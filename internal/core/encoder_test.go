package core

import (
	"math"
	"testing"

	"spinal/internal/rng"
)

func testMessage(seed uint64, bits int) []byte {
	return RandomMessage(rng.New(seed), bits)
}

func TestEncoderDeterministic(t *testing.T) {
	p := DefaultParams()
	msg := testMessage(1, p.MessageBits)
	e1, err := NewEncoder(p, msg)
	if err != nil {
		t.Fatal(err)
	}
	e2, _ := NewEncoder(p, msg)
	for pass := 0; pass < 4; pass++ {
		for s := 0; s < e1.NumSegments(); s++ {
			if e1.Symbol(s, pass) != e2.Symbol(s, pass) {
				t.Fatalf("symbol (%d,%d) differs between identical encoders", s, pass)
			}
		}
	}
}

func TestEncoderSpineChaining(t *testing.T) {
	p := DefaultParams()
	msg := testMessage(2, p.MessageBits)
	e, _ := NewEncoder(p, msg)
	spine := e.Spine()
	if len(spine) != 3 {
		t.Fatalf("spine length = %d, want 3", len(spine))
	}
	// Recompute manually: s_t = h(s_{t-1}, M_t).
	f := p.family()
	s := uint64(0)
	for i := 0; i < 3; i++ {
		s = f.Next(s, segmentOf(p, msg, i))
		if s != spine[i] {
			t.Fatalf("spine[%d] mismatch", i)
		}
	}
}

func TestEncoderPrefixProperty(t *testing.T) {
	// Two messages that agree on their first segment share the first spine
	// value but (with overwhelming probability) differ afterwards.
	p := DefaultParams()
	msgA := []byte{0xAB, 0x00, 0x00}
	msgB := []byte{0xAB, 0xFF, 0x00}
	ea, _ := NewEncoder(p, msgA)
	eb, _ := NewEncoder(p, msgB)
	sa, sb := ea.Spine(), eb.Spine()
	if sa[0] != sb[0] {
		t.Fatal("first spine value should match for identical first segments")
	}
	if sa[1] == sb[1] || sa[2] == sb[2] {
		t.Fatal("later spine values should differ for different messages")
	}
}

func TestEncoderSingleBitChangePropagates(t *testing.T) {
	// Nonlinearity property from §4: messages differing in one bit produce
	// very different symbol sequences from the first affected segment on.
	p := DefaultParams()
	msgA := testMessage(3, p.MessageBits)
	msgB := append([]byte(nil), msgA...)
	msgB[0] ^= 0x01 // flip message bit 0 (first segment)
	ea, _ := NewEncoder(p, msgA)
	eb, _ := NewEncoder(p, msgB)
	var dist float64
	for pass := 0; pass < 8; pass++ {
		for s := 0; s < ea.NumSegments(); s++ {
			d := ea.Symbol(s, pass) - eb.Symbol(s, pass)
			dist += real(d)*real(d) + imag(d)*imag(d)
		}
	}
	// With unit-energy symbols and 24 independent symbol pairs, the expected
	// squared distance is about 2 per symbol; anything tiny means the change
	// failed to propagate.
	if dist < 10 {
		t.Fatalf("single-bit change produced tiny codeword distance %v", dist)
	}
}

func TestEncoderSymbolEnergy(t *testing.T) {
	// Average symbol energy over many symbols should be close to 1 (the
	// constellation normalization), which makes SNR = 1/sigma^2.
	p := DefaultParams()
	src := rng.New(4)
	var energy float64
	count := 0
	for m := 0; m < 40; m++ {
		msg := RandomMessage(src, p.MessageBits)
		e, err := NewEncoder(p, msg)
		if err != nil {
			t.Fatal(err)
		}
		for pass := 0; pass < 10; pass++ {
			for s := 0; s < e.NumSegments(); s++ {
				x := e.Symbol(s, pass)
				energy += real(x)*real(x) + imag(x)*imag(x)
				count++
			}
		}
	}
	avg := energy / float64(count)
	if math.Abs(avg-1) > 0.05 {
		t.Fatalf("average symbol energy = %v, want about 1", avg)
	}
}

func TestEncoderPassSymbols(t *testing.T) {
	p := DefaultParams()
	msg := testMessage(5, p.MessageBits)
	e, _ := NewEncoder(p, msg)
	pass := e.Pass(2)
	if len(pass) != e.NumSegments() {
		t.Fatalf("Pass length = %d", len(pass))
	}
	for s := range pass {
		if pass[s] != e.Symbol(s, 2) {
			t.Fatalf("Pass()[%d] disagrees with Symbol", s)
		}
	}
}

func TestEncoderDifferentPassesDiffer(t *testing.T) {
	p := DefaultParams()
	msg := testMessage(6, p.MessageBits)
	e, _ := NewEncoder(p, msg)
	same := 0
	for pass := 1; pass < 20; pass++ {
		if e.Symbol(0, pass) == e.Symbol(0, 0) {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("%d of 19 passes repeated the pass-0 symbol", same)
	}
}

func TestEncoderCodedBits(t *testing.T) {
	p := Params{K: 4, C: 10, MessageBits: 16, Seed: 7}
	msg := testMessage(7, p.MessageBits)
	e, _ := NewEncoder(p, msg)
	ones := 0
	total := 0
	for pass := 0; pass < 64; pass++ {
		bits := e.BitPass(pass)
		if len(bits) != e.NumSegments() {
			t.Fatalf("BitPass length = %d", len(bits))
		}
		for _, b := range bits {
			if b != 0 && b != 1 {
				t.Fatalf("coded bit out of alphabet: %d", b)
			}
			if b == 1 {
				ones++
			}
			total++
		}
	}
	frac := float64(ones) / float64(total)
	if frac < 0.35 || frac > 0.65 {
		t.Fatalf("coded bits not balanced: fraction of ones = %v", frac)
	}
}

func TestEncoderRejectsBadInput(t *testing.T) {
	p := DefaultParams()
	if _, err := NewEncoder(p, []byte{1, 2}); err == nil {
		t.Error("short message accepted")
	}
	if _, err := NewEncoder(p, []byte{1, 2, 3, 4}); err == nil {
		t.Error("long message accepted")
	}
	bad := p
	bad.K = 0
	if _, err := NewEncoder(bad, []byte{1, 2, 3}); err == nil {
		t.Error("invalid params accepted")
	}
	odd := Params{K: 8, C: 10, MessageBits: 20, Seed: 1}
	if _, err := NewEncoder(odd, []byte{0xff, 0xff, 0xff}); err == nil {
		t.Error("message with stray padding bits accepted")
	}
}

func TestEncoderSeedChangesSymbols(t *testing.T) {
	pa := DefaultParams()
	pb := pa
	pb.Seed = pa.Seed + 1
	msg := testMessage(8, pa.MessageBits)
	ea, _ := NewEncoder(pa, msg)
	eb, _ := NewEncoder(pb, msg)
	if ea.Symbol(0, 0) == eb.Symbol(0, 0) && ea.Symbol(1, 0) == eb.Symbol(1, 0) &&
		ea.Symbol(2, 0) == eb.Symbol(2, 0) {
		t.Fatal("different seeds produced identical first pass")
	}
}

func TestEncodeSymbolsHelper(t *testing.T) {
	p := DefaultParams()
	msg := testMessage(9, p.MessageBits)
	e, _ := NewEncoder(p, msg)
	sched, _ := NewSequentialSchedule(e.NumSegments())
	syms, poss, err := EncodeSymbols(e, sched, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(syms) != 7 || len(poss) != 7 {
		t.Fatalf("EncodeSymbols returned %d/%d entries", len(syms), len(poss))
	}
	for i := range syms {
		if syms[i] != e.SymbolAt(poss[i]) {
			t.Fatalf("symbol %d does not match its position", i)
		}
	}
	if _, _, err := EncodeSymbols(e, sched, -1); err == nil {
		t.Error("negative count accepted")
	}
}

func BenchmarkEncoderSpine(b *testing.B) {
	p := Params{K: 8, C: 10, MessageBits: 1024, Seed: 1}
	msg := testMessage(1, p.MessageBits)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewEncoder(p, msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncoderSymbols(b *testing.B) {
	p := Params{K: 8, C: 10, MessageBits: 1024, Seed: 1}
	msg := testMessage(1, p.MessageBits)
	e, _ := NewEncoder(p, msg)
	nseg := e.NumSegments()
	b.ResetTimer()
	var acc complex128
	for i := 0; i < b.N; i++ {
		acc += e.Symbol(i%nseg, i/nseg)
	}
	_ = acc
}
