package core

import "fmt"

// Schedule defines the order in which (spine value, pass) pairs are
// transmitted. The i-th transmitted symbol of a rateless stream is the one at
// Pos(i). Schedules must enumerate every position eventually (each pair
// appears for exactly one i), so that a receiver that waits long enough
// always accumulates the full passes of the paper.
type Schedule interface {
	// Pos maps a stream index (0-based) to the symbol position transmitted at
	// that index.
	Pos(i int) SymbolPos
	// Name identifies the schedule in experiment output.
	Name() string
}

// posRanger is the optional batch counterpart of Schedule.Pos: fill dst with
// the positions of stream indices start..start+len(dst)-1. Both built-in
// schedules implement it; PositionsInto falls back to per-index Pos calls for
// schedules that do not.
type posRanger interface {
	PosRange(start int, dst []SymbolPos)
}

// PositionsInto fills dst with the schedule positions of the stream indices
// start, start+1, ..., start+len(dst)-1. It is the batch entry point of the
// symbol paths: for the built-in schedules it avoids one interface call per
// symbol.
func PositionsInto(s Schedule, start int, dst []SymbolPos) {
	if pr, ok := s.(posRanger); ok {
		pr.PosRange(start, dst)
		return
	}
	for i := range dst {
		dst[i] = s.Pos(start + i)
	}
}

// sequentialSchedule transmits every spine value in every pass, in spine
// order: pass 0 symbols 0..n/k-1, then pass 1, and so on. This is the
// unpunctured encoder of §3.1 whose maximum rate is k bits/symbol.
type sequentialSchedule struct {
	nseg int
}

// NewSequentialSchedule returns the unpunctured transmission order for a code
// with the given number of spine values.
func NewSequentialSchedule(nseg int) (Schedule, error) {
	if nseg < 1 {
		return nil, fmt.Errorf("core: schedule needs at least one spine value, got %d", nseg)
	}
	return &sequentialSchedule{nseg: nseg}, nil
}

func (s *sequentialSchedule) Name() string { return "sequential" }

func (s *sequentialSchedule) Pos(i int) SymbolPos {
	if i < 0 {
		panic("core: negative stream index")
	}
	return SymbolPos{Spine: i % s.nseg, Pass: i / s.nseg}
}

// PosRange implements the batch position fill with running counters instead
// of one div/mod pair per symbol.
func (s *sequentialSchedule) PosRange(start int, dst []SymbolPos) {
	if start < 0 {
		panic("core: negative stream index")
	}
	spine := start % s.nseg
	pass := start / s.nseg
	for i := range dst {
		dst[i] = SymbolPos{Spine: spine, Pass: pass}
		spine++
		if spine == s.nseg {
			spine = 0
			pass++
		}
	}
}

// stripedSchedule implements the puncturing described at the end of §3.1: the
// transmitter does not send each successive spine value in every round of
// transmission. Within each pass the spine values are visited in a "spread"
// order that begins with the final spine value (which depends on every
// message bit and therefore carries information about the whole message) and
// then covers the remaining values in a stride-interleaved order. Combined
// with a decoder that attempts decoding after every symbol, this lets the
// code achieve rates above k bits/symbol at high SNR, because a message can
// be recovered before all n/k symbols of the first pass have been sent.
type stripedSchedule struct {
	nseg   int
	stride int
	order  []int // within-pass visiting order of spine indices
}

// NewStripedSchedule returns a punctured schedule with the given stride (the
// number of interleaved subpasses per pass). Stride values larger than the
// number of spine values are clamped.
func NewStripedSchedule(nseg, stride int) (Schedule, error) {
	if nseg < 1 {
		return nil, fmt.Errorf("core: schedule needs at least one spine value, got %d", nseg)
	}
	if stride < 1 {
		return nil, fmt.Errorf("core: stride must be >= 1, got %d", stride)
	}
	if stride > nseg {
		stride = nseg
	}
	s := &stripedSchedule{nseg: nseg, stride: stride}
	s.order = buildStripedOrder(nseg, stride)
	return s, nil
}

// buildStripedOrder produces the within-pass visiting order: the last spine
// index first, then residue classes modulo stride visited from the highest
// residue down, each class from the highest index down. The result is a
// permutation of 0..nseg-1.
func buildStripedOrder(nseg, stride int) []int {
	order := make([]int, 0, nseg)
	last := nseg - 1
	order = append(order, last)
	for r := stride - 1; r >= 0; r-- {
		for t := nseg - 1; t >= 0; t-- {
			if t == last || t%stride != r {
				continue
			}
			order = append(order, t)
		}
	}
	return order
}

func (s *stripedSchedule) Name() string {
	return fmt.Sprintf("striped(stride=%d)", s.stride)
}

func (s *stripedSchedule) Pos(i int) SymbolPos {
	if i < 0 {
		panic("core: negative stream index")
	}
	pass := i / s.nseg
	return SymbolPos{Spine: s.order[i%s.nseg], Pass: pass}
}

// PosRange implements the batch position fill with running counters instead
// of one div/mod pair per symbol.
func (s *stripedSchedule) PosRange(start int, dst []SymbolPos) {
	if start < 0 {
		panic("core: negative stream index")
	}
	idx := start % s.nseg
	pass := start / s.nseg
	for i := range dst {
		dst[i] = SymbolPos{Spine: s.order[idx], Pass: pass}
		idx++
		if idx == s.nseg {
			idx = 0
			pass++
		}
	}
}

// ScheduleByName builds a schedule from a short name used on experiment
// command lines: "sequential" or "striped".
func ScheduleByName(name string, nseg int) (Schedule, error) {
	switch name {
	case "sequential", "":
		return NewSequentialSchedule(nseg)
	case "striped":
		return NewStripedSchedule(nseg, 8)
	default:
		return nil, fmt.Errorf("core: unknown schedule %q", name)
	}
}
