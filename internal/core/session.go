package core

import "fmt"

// This file implements the rateless transmission loop of §3.2: the sender
// keeps emitting symbols (in schedule order) and the receiver keeps feeding
// them to the decoder, attempting a decode according to an attempt policy,
// until the decoded message is verified (by a genie in the paper's
// simulations, by a CRC in a deployed link layer) or a give-up bound is hit.

// AttemptPolicy decides after which received symbols the receiver runs the
// decoder. Attempting after every symbol gives the finest rate granularity
// but costs the most computation; attempting once per pass is cheaper and
// loses little at low SNR where many passes are needed anyway.
type AttemptPolicy interface {
	// ShouldAttempt reports whether to run the decoder after `received`
	// symbols (1-based) have arrived, for a code with nseg spine values.
	ShouldAttempt(received, nseg int) bool
	// Name identifies the policy in experiment output.
	Name() string
}

// AttemptEverySymbol attempts a decode after every received symbol.
type AttemptEverySymbol struct{}

// ShouldAttempt implements AttemptPolicy.
func (AttemptEverySymbol) ShouldAttempt(received, nseg int) bool { return true }

// Name implements AttemptPolicy.
func (AttemptEverySymbol) Name() string { return "every-symbol" }

// AttemptEveryPass attempts a decode only when a whole pass worth of symbols
// (n/k of them) has arrived.
type AttemptEveryPass struct{}

// ShouldAttempt implements AttemptPolicy.
func (AttemptEveryPass) ShouldAttempt(received, nseg int) bool {
	return nseg > 0 && received%nseg == 0
}

// Name implements AttemptPolicy.
func (AttemptEveryPass) Name() string { return "every-pass" }

// AttemptAdaptive attempts after every symbol for the first few passes (where
// each extra symbol can change the achieved rate substantially) and once per
// pass afterwards (where rates are low and per-symbol attempts are wasted
// work). This is the default policy of the experiment harness.
//
// With the incremental decoder an attempt after one new symbol only touches
// the tree from that symbol's level down and replays no hashes for unchanged
// levels, so per-symbol attempts cost a small fraction of a full decode. The
// default fine-grained window is therefore 8 passes (it was 2 when every
// attempt re-ran the whole tree), which buys finer rate granularity through
// the SNR range where most messages complete.
type AttemptAdaptive struct {
	// FinePasses is the number of initial passes decoded at per-symbol
	// granularity. Zero means 8.
	FinePasses int
}

// DefaultFinePasses is the fine-grained window used when
// AttemptAdaptive.FinePasses is zero.
const DefaultFinePasses = 8

// ShouldAttempt implements AttemptPolicy.
func (a AttemptAdaptive) ShouldAttempt(received, nseg int) bool {
	fine := a.FinePasses
	if fine <= 0 {
		fine = DefaultFinePasses
	}
	if received <= fine*nseg {
		return true
	}
	return nseg > 0 && received%nseg == 0
}

// Name implements AttemptPolicy.
func (a AttemptAdaptive) Name() string { return "adaptive" }

// AttemptBackoff attempts after every pass for the first several passes and
// then backs off geometrically (every 2nd pass, then every 4th, ...). It
// bounds the total decoding work of very long transmissions — the cost of an
// attempt grows with the number of passes received, so attempting every pass
// forever makes the work quadratic — at the price of a small rate loss when a
// message finally decodes between two attempt points.
type AttemptBackoff struct {
	// DensePasses is the number of initial passes attempted at per-pass
	// granularity. Zero means 8.
	DensePasses int
}

// ShouldAttempt implements AttemptPolicy.
func (a AttemptBackoff) ShouldAttempt(received, nseg int) bool {
	if nseg <= 0 || received%nseg != 0 {
		return false
	}
	dense := a.DensePasses
	if dense <= 0 {
		dense = 8
	}
	pass := received / nseg
	if pass <= dense {
		return true
	}
	// Beyond the dense phase, attempt at passes dense*2, dense*4, ... and at
	// every multiple of the current backoff interval in between.
	interval := 2
	for threshold := dense * 2; ; threshold *= 2 {
		if pass <= threshold {
			return pass%interval == 0
		}
		interval *= 2
		if interval > 1<<20 {
			return pass%interval == 0
		}
	}
}

// Name implements AttemptPolicy.
func (a AttemptBackoff) Name() string { return "backoff" }

// Verifier reports whether a decoded message should be accepted, ending the
// rateless transmission. GenieVerifier compares against the true message (the
// paper's simulation methodology); link-layer deployments verify a CRC
// embedded in the message instead.
type Verifier func(decoded []byte) bool

// GenieVerifier returns a Verifier that accepts exactly the true message.
func GenieVerifier(truth []byte, messageBits int) Verifier {
	ref := append([]byte(nil), truth...)
	return func(decoded []byte) bool {
		return EqualMessages(decoded, ref, messageBits)
	}
}

// SessionConfig configures a rateless transmission.
type SessionConfig struct {
	// Params are the code parameters shared by sender and receiver.
	Params Params
	// BeamWidth is the decoder's B. Values below 1 default to 16 (the value
	// used for Figure 2).
	BeamWidth int
	// MaxCandidates optionally overrides the decoder's cap on unpruned
	// expansion at punctured levels (0 keeps the decoder default).
	MaxCandidates int
	// Schedule is the symbol transmission order; nil means the unpunctured
	// sequential schedule.
	Schedule Schedule
	// Attempts is the decode-attempt policy; nil means AttemptAdaptive.
	Attempts AttemptPolicy
	// MaxSymbols bounds the number of channel uses before the sender gives up
	// on the message. Zero selects 400 passes worth of symbols.
	MaxSymbols int
	// DisableIncremental forces every decode attempt to run from the root of
	// the tree instead of resuming from the previous attempt's workspace. It
	// exists for benchmarks and equivalence tests; leave it false in real use.
	DisableIncremental bool
	// Parallelism is the number of worker goroutines the decoder shards each
	// level expansion across. Zero keeps the decoder default
	// (runtime.GOMAXPROCS); 1 forces the serial path. Results are
	// bit-identical at any setting.
	Parallelism int
	// CostMetric selects the decoder's cost arithmetic: the exact CostFloat64
	// default, or the quantized CostInt32 metric (see BeamDecoder.SetCostMetric).
	CostMetric CostMetric
	// Search selects the decoder's tree-search strategy: the exact beam
	// search (the zero value) or an approximate mode (see
	// BeamDecoder.SetSearchConfig).
	Search SearchConfig
	// Pool, when non-nil, supplies the session's decoder and observation
	// containers as a DecoderPool lease (released when the session returns)
	// instead of constructing them, so callers running many sessions — the
	// experiment trial runner in particular — reuse decoder workspaces across
	// trials. Pooled and freshly built decoders are bit-identical.
	Pool *DecoderPool
}

func (c SessionConfig) withDefaults() (SessionConfig, error) {
	if err := c.Params.Validate(); err != nil {
		return c, err
	}
	if c.BeamWidth < 1 {
		c.BeamWidth = 16
	}
	nseg := c.Params.NumSegments()
	if c.Schedule == nil {
		sched, err := NewSequentialSchedule(nseg)
		if err != nil {
			return c, err
		}
		c.Schedule = sched
	}
	if c.Attempts == nil {
		c.Attempts = AttemptAdaptive{}
	}
	if c.MaxSymbols <= 0 {
		c.MaxSymbols = 400 * nseg
	}
	return c, nil
}

// Result summarizes one rateless transmission.
type Result struct {
	// Decoded is the receiver's final message estimate.
	Decoded []byte
	// Success reports whether the verifier accepted a decode before the
	// give-up bound.
	Success bool
	// ChannelUses is the number of symbols (or coded bits, for the BSC
	// variant) transmitted up to and including the accepted decode, or up to
	// the give-up bound on failure.
	ChannelUses int
	// Attempts is the number of decoder invocations.
	Attempts int
	// NodesExpanded is the total number of freshly expanded decoding-tree
	// nodes (hash replay plus full cost computation) across all attempts.
	NodesExpanded int64
	// NodesRefreshed is the total number of cached nodes reused across
	// attempts with an in-place cost update — the work the incremental
	// decoder did instead of re-expanding.
	NodesRefreshed int64
	// NodesSaved is the total estimated child expansions avoided by
	// approximate search across all attempts; zero under exact search.
	NodesSaved int64
}

// Rate returns the achieved rate in message bits per channel use, or zero if
// the transmission failed.
func (r *Result) Rate(messageBits int) float64 {
	if !r.Success || r.ChannelUses == 0 {
		return 0
	}
	return float64(messageBits) / float64(r.ChannelUses)
}

// BlockChannel corrupts a block of complex symbols: dst[i] receives the
// channel output for src[i], in order (stateful channels consume their noise
// stream in slice order, so a block call is indistinguishable from the
// equivalent sequence of scalar calls). dst and src have equal length and may
// alias. It is the batch contract the sessions — and the public facade's
// Channel interface — are built on.
type BlockChannel interface {
	CorruptBlock(dst, src []complex128)
}

// BlockBitChannel is the binary counterpart of BlockChannel for the BSC
// variant: dst[i] receives the (possibly flipped) coded bit src[i].
type BlockBitChannel interface {
	CorruptBits(dst, src []byte)
}

// funcSymbolChannel adapts a scalar corrupt closure to BlockChannel; the
// closure is applied in slice order, so the adapter draws the exact same
// noise stream the scalar transmission loop did.
type funcSymbolChannel func(complex128) complex128

func (f funcSymbolChannel) CorruptBlock(dst, src []complex128) {
	for i, x := range src {
		dst[i] = f(x)
	}
}

// funcBitChannel adapts a scalar bit-corrupt closure to BlockBitChannel.
type funcBitChannel func(byte) byte

func (f funcBitChannel) CorruptBits(dst, src []byte) {
	for i, b := range src {
		dst[i] = f(b)
	}
}

// maxSessionBatch bounds the scratch buffers of a session: stretches of the
// stream with no decode attempt (the backoff policy skips whole pass ranges)
// are emitted in sub-batches of at most this many symbols.
const maxSessionBatch = 4096

// sessionBuffers holds the reusable batch scratch of one transmission.
type sessionBuffers struct {
	poss []SymbolPos
	tx   []complex128
	rx   []complex128
	txb  []byte
	rxb  []byte
}

// sized returns the buffers resliced to n elements, growing them as needed.
func (b *sessionBuffers) sized(n int) ([]SymbolPos, []complex128, []complex128) {
	if cap(b.poss) < n {
		b.poss = make([]SymbolPos, n)
	}
	if cap(b.tx) < n {
		b.tx = make([]complex128, n)
		b.rx = make([]complex128, n)
	}
	return b.poss[:n], b.tx[:n], b.rx[:n]
}

// sizedBits is the bit-session counterpart of sized.
func (b *sessionBuffers) sizedBits(n int) ([]SymbolPos, []byte, []byte) {
	if cap(b.poss) < n {
		b.poss = make([]SymbolPos, n)
	}
	if cap(b.txb) < n {
		b.txb = make([]byte, n)
		b.rxb = make([]byte, n)
	}
	return b.poss[:n], b.txb[:n], b.rxb[:n]
}

// nextAttempt scans forward from `sent` transmitted symbols to the next
// symbol count at which the receiver runs the decoder, or to maxSymbols if no
// attempt point remains in the budget. The boolean reports whether the
// returned count is an attempt point.
func nextAttempt(att AttemptPolicy, sent, minUses, nseg, maxSymbols int) (int, bool) {
	for sent < maxSymbols {
		sent++
		if sent >= minUses && att.ShouldAttempt(sent, nseg) {
			return sent, true
		}
	}
	return maxSymbols, false
}

// sessionDecoder acquires and configures the decoder of a session: a lease
// from cfg.Pool when one is configured (lease is nil otherwise), or a freshly
// built decoder. The returned release func returns the lease to the pool or
// closes the private decoder. Every tuning knob is applied explicitly in both
// paths, so a pooled session behaves exactly like an unpooled one.
func sessionDecoder(cfg SessionConfig) (dec *BeamDecoder, lease *LeasedDecoder, release func(), err error) {
	if cfg.Pool != nil {
		lease, err = cfg.Pool.Lease(cfg.Params, cfg.BeamWidth)
		if err != nil {
			return nil, nil, nil, err
		}
		dec, release = lease.Dec, lease.Release
	} else {
		dec, err = NewBeamDecoder(cfg.Params, cfg.BeamWidth)
		if err != nil {
			return nil, nil, nil, err
		}
		release = dec.Close
	}
	if cfg.MaxCandidates > 0 {
		if err := dec.SetMaxCandidates(cfg.MaxCandidates); err != nil {
			release()
			return nil, nil, nil, err
		}
	}
	if err := dec.SetCostMetric(cfg.CostMetric); err != nil {
		release()
		return nil, nil, nil, err
	}
	if err := dec.SetSearchConfig(cfg.Search); err != nil {
		release()
		return nil, nil, nil, err
	}
	dec.SetIncremental(!cfg.DisableIncremental)
	dec.SetParallelism(cfg.Parallelism) // <= 0 selects the GOMAXPROCS default
	return dec, lease, release, nil
}

// RunChannelSession transmits message over a BlockChannel until verify
// accepts a decode, returning the transcript of the transmission. This is the
// batch-first transmission loop: symbols are generated, corrupted and folded
// into the observations a whole inter-attempt stretch at a time (one striped
// pass under the default policies), so the hot path costs one schedule fill,
// one encoder fill, one channel call and one observation append per batch
// instead of four calls per symbol. Attempt points, channel noise stream and
// decode results are identical to the per-symbol loop this replaces.
func RunChannelSession(cfg SessionConfig, message []byte, ch BlockChannel, verify Verifier) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if ch == nil || verify == nil {
		return nil, fmt.Errorf("core: nil channel or verifier")
	}
	enc, err := NewEncoder(cfg.Params, message)
	if err != nil {
		return nil, err
	}
	dec, lease, release, err := sessionDecoder(cfg)
	if err != nil {
		return nil, err
	}
	defer release()
	var obs *Observations
	if lease != nil {
		obs = lease.Obs
	} else if obs, err = NewObservations(cfg.Params.NumSegments()); err != nil {
		return nil, err
	}

	res := &Result{}
	nseg := cfg.Params.NumSegments()
	// No decode attempt can succeed before the received symbols could even in
	// principle carry the whole message (2c coded bits per symbol), so skip
	// the earliest attempts outright.
	minUses := (cfg.Params.MessageBits + 2*cfg.Params.C - 1) / (2 * cfg.Params.C)
	var bufs sessionBuffers
	sent := 0
	for sent < cfg.MaxSymbols {
		stop, attempt := nextAttempt(cfg.Attempts, sent, minUses, nseg, cfg.MaxSymbols)
		for sent < stop {
			n := stop - sent
			if n > maxSessionBatch {
				n = maxSessionBatch
			}
			poss, tx, rx := bufs.sized(n)
			PositionsInto(cfg.Schedule, sent, poss)
			if err := enc.EncodeBatch(tx, poss); err != nil {
				return nil, err
			}
			ch.CorruptBlock(rx, tx)
			if err := obs.AddBatch(poss, rx); err != nil {
				return nil, err
			}
			sent += n
		}
		if !attempt {
			break
		}
		out, err := dec.Decode(obs)
		if err != nil {
			return nil, err
		}
		res.Attempts++
		res.NodesExpanded += int64(out.NodesExpanded)
		res.NodesRefreshed += int64(out.NodesRefreshed)
		res.NodesSaved += int64(out.NodesSaved)
		res.Decoded = out.Message
		if verify(out.Message) {
			res.Success = true
			res.ChannelUses = sent
			return res, nil
		}
	}
	res.ChannelUses = cfg.MaxSymbols
	return res, nil
}

// RunSymbolSession transmits message over a symbol channel represented by a
// scalar corrupt function until verify accepts a decode. It is a thin adapter
// over RunChannelSession kept for closure-based callers; the adapter applies
// the closure in stream order, so results are bit-identical to the historical
// per-symbol loop.
func RunSymbolSession(cfg SessionConfig, message []byte, corrupt func(complex128) complex128, verify Verifier) (*Result, error) {
	if corrupt == nil {
		return nil, fmt.Errorf("core: nil channel or verifier")
	}
	return RunChannelSession(cfg, message, funcSymbolChannel(corrupt), verify)
}

// RunBitChannelSession is the binary-channel counterpart of
// RunChannelSession: the encoder emits one coded bit per (spine value, pass)
// and the decoder uses the Hamming metric, which is the ML rule for the BSC.
func RunBitChannelSession(cfg SessionConfig, message []byte, ch BlockBitChannel, verify Verifier) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if ch == nil || verify == nil {
		return nil, fmt.Errorf("core: nil channel or verifier")
	}
	enc, err := NewEncoder(cfg.Params, message)
	if err != nil {
		return nil, err
	}
	dec, lease, release, err := sessionDecoder(cfg)
	if err != nil {
		return nil, err
	}
	defer release()
	var obs *BitObservations
	if lease != nil {
		if obs, err = lease.Bits(); err != nil {
			return nil, err
		}
	} else if obs, err = NewBitObservations(cfg.Params.NumSegments()); err != nil {
		return nil, err
	}

	res := &Result{}
	nseg := cfg.Params.NumSegments()
	// A decode from fewer coded bits than message bits cannot be reliable
	// (the BSC carries at most one bit per channel use), so skip those
	// attempts.
	minUses := cfg.Params.MessageBits
	var bufs sessionBuffers
	sent := 0
	for sent < cfg.MaxSymbols {
		stop, attempt := nextAttempt(cfg.Attempts, sent, minUses, nseg, cfg.MaxSymbols)
		for sent < stop {
			n := stop - sent
			if n > maxSessionBatch {
				n = maxSessionBatch
			}
			poss, tx, rx := bufs.sizedBits(n)
			PositionsInto(cfg.Schedule, sent, poss)
			if err := enc.CodedBitBatch(tx, poss); err != nil {
				return nil, err
			}
			ch.CorruptBits(rx, tx)
			if err := obs.AddBatch(poss, rx); err != nil {
				return nil, err
			}
			sent += n
		}
		if !attempt {
			break
		}
		out, err := dec.DecodeBits(obs)
		if err != nil {
			return nil, err
		}
		res.Attempts++
		res.NodesExpanded += int64(out.NodesExpanded)
		res.NodesRefreshed += int64(out.NodesRefreshed)
		res.NodesSaved += int64(out.NodesSaved)
		res.Decoded = out.Message
		if verify(out.Message) {
			res.Success = true
			res.ChannelUses = sent
			return res, nil
		}
	}
	res.ChannelUses = cfg.MaxSymbols
	return res, nil
}

// RunBitSession adapts a scalar bit-corrupt closure to RunBitChannelSession;
// see RunSymbolSession.
func RunBitSession(cfg SessionConfig, message []byte, corruptBit func(byte) byte, verify Verifier) (*Result, error) {
	if corruptBit == nil {
		return nil, fmt.Errorf("core: nil channel or verifier")
	}
	return RunBitChannelSession(cfg, message, funcBitChannel(corruptBit), verify)
}
