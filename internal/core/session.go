package core

import "fmt"

// This file implements the rateless transmission loop of §3.2: the sender
// keeps emitting symbols (in schedule order) and the receiver keeps feeding
// them to the decoder, attempting a decode according to an attempt policy,
// until the decoded message is verified (by a genie in the paper's
// simulations, by a CRC in a deployed link layer) or a give-up bound is hit.

// AttemptPolicy decides after which received symbols the receiver runs the
// decoder. Attempting after every symbol gives the finest rate granularity
// but costs the most computation; attempting once per pass is cheaper and
// loses little at low SNR where many passes are needed anyway.
type AttemptPolicy interface {
	// ShouldAttempt reports whether to run the decoder after `received`
	// symbols (1-based) have arrived, for a code with nseg spine values.
	ShouldAttempt(received, nseg int) bool
	// Name identifies the policy in experiment output.
	Name() string
}

// AttemptEverySymbol attempts a decode after every received symbol.
type AttemptEverySymbol struct{}

// ShouldAttempt implements AttemptPolicy.
func (AttemptEverySymbol) ShouldAttempt(received, nseg int) bool { return true }

// Name implements AttemptPolicy.
func (AttemptEverySymbol) Name() string { return "every-symbol" }

// AttemptEveryPass attempts a decode only when a whole pass worth of symbols
// (n/k of them) has arrived.
type AttemptEveryPass struct{}

// ShouldAttempt implements AttemptPolicy.
func (AttemptEveryPass) ShouldAttempt(received, nseg int) bool {
	return nseg > 0 && received%nseg == 0
}

// Name implements AttemptPolicy.
func (AttemptEveryPass) Name() string { return "every-pass" }

// AttemptAdaptive attempts after every symbol for the first few passes (where
// each extra symbol can change the achieved rate substantially) and once per
// pass afterwards (where rates are low and per-symbol attempts are wasted
// work). This is the default policy of the experiment harness.
//
// With the incremental decoder an attempt after one new symbol only touches
// the tree from that symbol's level down and replays no hashes for unchanged
// levels, so per-symbol attempts cost a small fraction of a full decode. The
// default fine-grained window is therefore 8 passes (it was 2 when every
// attempt re-ran the whole tree), which buys finer rate granularity through
// the SNR range where most messages complete.
type AttemptAdaptive struct {
	// FinePasses is the number of initial passes decoded at per-symbol
	// granularity. Zero means 8.
	FinePasses int
}

// DefaultFinePasses is the fine-grained window used when
// AttemptAdaptive.FinePasses is zero.
const DefaultFinePasses = 8

// ShouldAttempt implements AttemptPolicy.
func (a AttemptAdaptive) ShouldAttempt(received, nseg int) bool {
	fine := a.FinePasses
	if fine <= 0 {
		fine = DefaultFinePasses
	}
	if received <= fine*nseg {
		return true
	}
	return nseg > 0 && received%nseg == 0
}

// Name implements AttemptPolicy.
func (a AttemptAdaptive) Name() string { return "adaptive" }

// AttemptBackoff attempts after every pass for the first several passes and
// then backs off geometrically (every 2nd pass, then every 4th, ...). It
// bounds the total decoding work of very long transmissions — the cost of an
// attempt grows with the number of passes received, so attempting every pass
// forever makes the work quadratic — at the price of a small rate loss when a
// message finally decodes between two attempt points.
type AttemptBackoff struct {
	// DensePasses is the number of initial passes attempted at per-pass
	// granularity. Zero means 8.
	DensePasses int
}

// ShouldAttempt implements AttemptPolicy.
func (a AttemptBackoff) ShouldAttempt(received, nseg int) bool {
	if nseg <= 0 || received%nseg != 0 {
		return false
	}
	dense := a.DensePasses
	if dense <= 0 {
		dense = 8
	}
	pass := received / nseg
	if pass <= dense {
		return true
	}
	// Beyond the dense phase, attempt at passes dense*2, dense*4, ... and at
	// every multiple of the current backoff interval in between.
	interval := 2
	for threshold := dense * 2; ; threshold *= 2 {
		if pass <= threshold {
			return pass%interval == 0
		}
		interval *= 2
		if interval > 1<<20 {
			return pass%interval == 0
		}
	}
}

// Name implements AttemptPolicy.
func (a AttemptBackoff) Name() string { return "backoff" }

// Verifier reports whether a decoded message should be accepted, ending the
// rateless transmission. GenieVerifier compares against the true message (the
// paper's simulation methodology); link-layer deployments verify a CRC
// embedded in the message instead.
type Verifier func(decoded []byte) bool

// GenieVerifier returns a Verifier that accepts exactly the true message.
func GenieVerifier(truth []byte, messageBits int) Verifier {
	ref := append([]byte(nil), truth...)
	return func(decoded []byte) bool {
		return EqualMessages(decoded, ref, messageBits)
	}
}

// SessionConfig configures a rateless transmission.
type SessionConfig struct {
	// Params are the code parameters shared by sender and receiver.
	Params Params
	// BeamWidth is the decoder's B. Values below 1 default to 16 (the value
	// used for Figure 2).
	BeamWidth int
	// MaxCandidates optionally overrides the decoder's cap on unpruned
	// expansion at punctured levels (0 keeps the decoder default).
	MaxCandidates int
	// Schedule is the symbol transmission order; nil means the unpunctured
	// sequential schedule.
	Schedule Schedule
	// Attempts is the decode-attempt policy; nil means AttemptAdaptive.
	Attempts AttemptPolicy
	// MaxSymbols bounds the number of channel uses before the sender gives up
	// on the message. Zero selects 400 passes worth of symbols.
	MaxSymbols int
	// DisableIncremental forces every decode attempt to run from the root of
	// the tree instead of resuming from the previous attempt's workspace. It
	// exists for benchmarks and equivalence tests; leave it false in real use.
	DisableIncremental bool
	// Parallelism is the number of worker goroutines the decoder shards each
	// level expansion across. Zero keeps the decoder default
	// (runtime.GOMAXPROCS); 1 forces the serial path. Results are
	// bit-identical at any setting.
	Parallelism int
}

func (c SessionConfig) withDefaults() (SessionConfig, error) {
	if err := c.Params.Validate(); err != nil {
		return c, err
	}
	if c.BeamWidth < 1 {
		c.BeamWidth = 16
	}
	nseg := c.Params.NumSegments()
	if c.Schedule == nil {
		sched, err := NewSequentialSchedule(nseg)
		if err != nil {
			return c, err
		}
		c.Schedule = sched
	}
	if c.Attempts == nil {
		c.Attempts = AttemptAdaptive{}
	}
	if c.MaxSymbols <= 0 {
		c.MaxSymbols = 400 * nseg
	}
	return c, nil
}

// Result summarizes one rateless transmission.
type Result struct {
	// Decoded is the receiver's final message estimate.
	Decoded []byte
	// Success reports whether the verifier accepted a decode before the
	// give-up bound.
	Success bool
	// ChannelUses is the number of symbols (or coded bits, for the BSC
	// variant) transmitted up to and including the accepted decode, or up to
	// the give-up bound on failure.
	ChannelUses int
	// Attempts is the number of decoder invocations.
	Attempts int
	// NodesExpanded is the total number of freshly expanded decoding-tree
	// nodes (hash replay plus full cost computation) across all attempts.
	NodesExpanded int64
	// NodesRefreshed is the total number of cached nodes reused across
	// attempts with an in-place cost update — the work the incremental
	// decoder did instead of re-expanding.
	NodesRefreshed int64
}

// Rate returns the achieved rate in message bits per channel use, or zero if
// the transmission failed.
func (r *Result) Rate(messageBits int) float64 {
	if !r.Success || r.ChannelUses == 0 {
		return 0
	}
	return float64(messageBits) / float64(r.ChannelUses)
}

// RunSymbolSession transmits message over a symbol channel represented by the
// corrupt function (typically channel.AWGN.Corrupt or QuantizedAWGN.Corrupt)
// until verify accepts a decode. It returns the transcript of the
// transmission.
func RunSymbolSession(cfg SessionConfig, message []byte, corrupt func(complex128) complex128, verify Verifier) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if corrupt == nil || verify == nil {
		return nil, fmt.Errorf("core: nil channel or verifier")
	}
	enc, err := NewEncoder(cfg.Params, message)
	if err != nil {
		return nil, err
	}
	dec, err := NewBeamDecoder(cfg.Params, cfg.BeamWidth)
	if err != nil {
		return nil, err
	}
	defer dec.Close()
	if cfg.MaxCandidates > 0 {
		if err := dec.SetMaxCandidates(cfg.MaxCandidates); err != nil {
			return nil, err
		}
	}
	dec.SetIncremental(!cfg.DisableIncremental)
	if cfg.Parallelism > 0 {
		dec.SetParallelism(cfg.Parallelism)
	}
	obs, err := NewObservations(cfg.Params.NumSegments())
	if err != nil {
		return nil, err
	}

	res := &Result{}
	nseg := cfg.Params.NumSegments()
	// No decode attempt can succeed before the received symbols could even in
	// principle carry the whole message (2c coded bits per symbol), so skip
	// the earliest attempts outright.
	minUses := (cfg.Params.MessageBits + 2*cfg.Params.C - 1) / (2 * cfg.Params.C)
	for i := 0; i < cfg.MaxSymbols; i++ {
		pos := cfg.Schedule.Pos(i)
		y := corrupt(enc.SymbolAt(pos))
		if err := obs.Add(pos, y); err != nil {
			return nil, err
		}
		received := i + 1
		if received < minUses || !cfg.Attempts.ShouldAttempt(received, nseg) {
			continue
		}
		out, err := dec.Decode(obs)
		if err != nil {
			return nil, err
		}
		res.Attempts++
		res.NodesExpanded += int64(out.NodesExpanded)
		res.NodesRefreshed += int64(out.NodesRefreshed)
		res.Decoded = out.Message
		if verify(out.Message) {
			res.Success = true
			res.ChannelUses = received
			return res, nil
		}
	}
	res.ChannelUses = cfg.MaxSymbols
	return res, nil
}

// RunBitSession is the binary-channel counterpart of RunSymbolSession: the
// encoder emits one coded bit per (spine value, pass) and the decoder uses
// the Hamming metric, which is the ML rule for the BSC.
func RunBitSession(cfg SessionConfig, message []byte, corruptBit func(byte) byte, verify Verifier) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if corruptBit == nil || verify == nil {
		return nil, fmt.Errorf("core: nil channel or verifier")
	}
	enc, err := NewEncoder(cfg.Params, message)
	if err != nil {
		return nil, err
	}
	dec, err := NewBeamDecoder(cfg.Params, cfg.BeamWidth)
	if err != nil {
		return nil, err
	}
	defer dec.Close()
	if cfg.MaxCandidates > 0 {
		if err := dec.SetMaxCandidates(cfg.MaxCandidates); err != nil {
			return nil, err
		}
	}
	dec.SetIncremental(!cfg.DisableIncremental)
	if cfg.Parallelism > 0 {
		dec.SetParallelism(cfg.Parallelism)
	}
	obs, err := NewBitObservations(cfg.Params.NumSegments())
	if err != nil {
		return nil, err
	}

	res := &Result{}
	nseg := cfg.Params.NumSegments()
	// A decode from fewer coded bits than message bits cannot be reliable
	// (the BSC carries at most one bit per channel use), so skip those
	// attempts.
	minUses := cfg.Params.MessageBits
	for i := 0; i < cfg.MaxSymbols; i++ {
		pos := cfg.Schedule.Pos(i)
		bit := corruptBit(enc.CodedBit(pos.Spine, pos.Pass))
		if err := obs.Add(pos, bit); err != nil {
			return nil, err
		}
		received := i + 1
		if received < minUses || !cfg.Attempts.ShouldAttempt(received, nseg) {
			continue
		}
		out, err := dec.DecodeBits(obs)
		if err != nil {
			return nil, err
		}
		res.Attempts++
		res.NodesExpanded += int64(out.NodesExpanded)
		res.NodesRefreshed += int64(out.NodesRefreshed)
		res.Decoded = out.Message
		if verify(out.Message) {
			res.Success = true
			res.ChannelUses = received
			return res, nil
		}
	}
	res.ChannelUses = cfg.MaxSymbols
	return res, nil
}
