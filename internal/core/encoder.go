package core

import (
	"fmt"

	"spinal/internal/constellation"
	"spinal/internal/hash"
)

// Encoder produces the rateless symbol stream for one message. It is cheap to
// construct (one hash invocation per message segment) and can generate an
// unbounded number of passes; symbol generation is deterministic, so symbols
// may be produced lazily and in any order.
type Encoder struct {
	p      Params
	family hash.Family
	mapper constellation.Mapper
	spine  []uint64
}

// NewEncoder computes the spine of the message and returns an encoder ready
// to emit symbols. The message must contain exactly Params.MessageBits bits
// packed LSB-first (see MessageBytes).
func NewEncoder(p Params, message []byte) (*Encoder, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := checkMessage(p, message); err != nil {
		return nil, err
	}
	mapper, err := p.mapper()
	if err != nil {
		return nil, err
	}
	e := &Encoder{
		p:      p,
		family: p.family(),
		mapper: mapper,
	}
	e.spine = computeSpine(p, e.family, message)
	return e, nil
}

// computeSpine chains the hash over the message segments: s_0 = 0,
// s_{t+1} = h(s_t, M_{t+1}). The returned slice holds s_1 ... s_{n/k}.
func computeSpine(p Params, f hash.Family, message []byte) []uint64 {
	nseg := p.NumSegments()
	spine := make([]uint64, nseg)
	s := uint64(0) // the agreed initial value s0
	for t := 0; t < nseg; t++ {
		s = f.Next(s, segmentOf(p, message, t))
		spine[t] = s
	}
	return spine
}

// Params returns the code parameters the encoder was built with.
func (e *Encoder) Params() Params { return e.p }

// NumSegments returns the number of spine values n/k.
func (e *Encoder) NumSegments() int { return len(e.spine) }

// Spine returns a copy of the spine values s_1..s_{n/k}. It is exposed for
// tests and diagnostics; transmitting it would defeat the code.
func (e *Encoder) Spine() []uint64 {
	out := make([]uint64, len(e.spine))
	copy(out, e.spine)
	return out
}

// Symbol returns the constellation point generated from spine value t
// (0-based) in the given pass (0-based): the 2c bits at offset 2c*pass of the
// spine value's expansion, run through the constellation mapper.
func (e *Encoder) Symbol(t, pass int) complex128 {
	return symbolFor(e.family, e.mapper, e.p.C, e.spine[t], pass)
}

// SymbolAt returns the symbol for a SymbolPos.
func (e *Encoder) SymbolAt(pos SymbolPos) complex128 {
	return e.Symbol(pos.Spine, pos.Pass)
}

// Pass returns all n/k symbols of one encoding pass in spine order.
func (e *Encoder) Pass(pass int) []complex128 {
	out := make([]complex128, len(e.spine))
	for t := range e.spine {
		out[t] = e.Symbol(t, pass)
	}
	return out
}

// EncodeBatch fills dst[i] with the constellation point at poss[i] for every
// i. It is the vectorized counterpart of SymbolAt used by the batch symbol
// paths: one call replaces len(poss) per-symbol calls, with the positions
// validated up front.
func (e *Encoder) EncodeBatch(dst []complex128, poss []SymbolPos) error {
	if len(dst) != len(poss) {
		return fmt.Errorf("core: EncodeBatch dst length %d != positions length %d", len(dst), len(poss))
	}
	if err := validatePositions(poss, len(e.spine)); err != nil {
		return err
	}
	for i, pos := range poss {
		dst[i] = symbolFor(e.family, e.mapper, e.p.C, e.spine[pos.Spine], pos.Pass)
	}
	return nil
}

// CodedBitBatch is the binary-channel counterpart of EncodeBatch: it fills
// dst[i] with the coded bit at poss[i].
func (e *Encoder) CodedBitBatch(dst []byte, poss []SymbolPos) error {
	if len(dst) != len(poss) {
		return fmt.Errorf("core: CodedBitBatch dst length %d != positions length %d", len(dst), len(poss))
	}
	if err := validatePositions(poss, len(e.spine)); err != nil {
		return err
	}
	for i, pos := range poss {
		dst[i] = codedBitFor(e.family, e.spine[pos.Spine], pos.Pass)
	}
	return nil
}

// CodedBit returns the single coded bit generated from spine value t in the
// given pass, for use over a binary channel (the paper's BSC variant): bit
// `pass` of the spine value's expansion.
func (e *Encoder) CodedBit(t, pass int) byte {
	return codedBitFor(e.family, e.spine[t], pass)
}

// BitPass returns the n/k coded bits of one pass for the BSC variant.
func (e *Encoder) BitPass(pass int) []byte {
	out := make([]byte, len(e.spine))
	for t := range e.spine {
		out[t] = e.CodedBit(t, pass)
	}
	return out
}

// symbolFor maps spine value s to its constellation point for the given pass.
// It is shared by the encoder and by the decoder's replay of the encoder.
func symbolFor(f hash.Family, mapper constellation.Mapper, c int, s uint64, pass int) complex128 {
	word := f.BitRange(s, uint(2*c*pass), uint(2*c))
	return mapper.Map(uint32(word))
}

// codedBitFor returns the coded bit for the BSC variant: successive passes
// consume successive bits of the spine value's expansion.
func codedBitFor(f hash.Family, s uint64, pass int) byte {
	return byte(f.BitRange(s, uint(pass), 1))
}

// EncodeSymbols is a convenience helper that returns the first `count`
// symbols of the stream in the order given by the schedule, along with their
// positions. It is used by examples and tests; the session logic generates
// symbols one at a time instead.
func EncodeSymbols(e *Encoder, sched Schedule, count int) ([]complex128, []SymbolPos, error) {
	if count < 0 {
		return nil, nil, fmt.Errorf("core: negative symbol count %d", count)
	}
	syms := make([]complex128, count)
	poss := make([]SymbolPos, count)
	for i := 0; i < count; i++ {
		pos := sched.Pos(i)
		poss[i] = pos
		syms[i] = e.SymbolAt(pos)
	}
	return syms, poss, nil
}
