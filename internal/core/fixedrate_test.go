package core

import (
	"testing"

	"spinal/internal/channel"
	"spinal/internal/rng"
)

func TestFixedRateBasics(t *testing.T) {
	p := DefaultParams()
	f, err := NewFixedRate(p, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	if f.Passes() != 4 || f.BlockSymbols() != 12 {
		t.Fatalf("passes=%d blockSymbols=%d", f.Passes(), f.BlockSymbols())
	}
	if got := f.Rate(); got != 2 {
		t.Fatalf("rate = %v, want 2 bits/symbol", got)
	}
	if f.Params().K != p.K {
		t.Fatal("params not preserved")
	}
}

func TestFixedRateValidation(t *testing.T) {
	p := DefaultParams()
	if _, err := NewFixedRate(p, 0, 16); err == nil {
		t.Error("zero passes accepted")
	}
	if _, err := NewFixedRate(p, 2, 0); err == nil {
		t.Error("zero beam accepted")
	}
	bad := p
	bad.K = 0
	if _, err := NewFixedRate(bad, 2, 16); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestFixedRateNoiselessRoundTrip(t *testing.T) {
	p := Params{K: 6, C: 8, MessageBits: 48, Seed: 11}
	f, err := NewFixedRate(p, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(1)
	for trial := 0; trial < 10; trial++ {
		msg := RandomMessage(src, p.MessageBits)
		block, err := f.Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		if len(block) != f.BlockSymbols() {
			t.Fatalf("block has %d symbols", len(block))
		}
		got, err := f.Decode(block)
		if err != nil {
			t.Fatal(err)
		}
		if !EqualMessages(got, msg, p.MessageBits) {
			t.Fatalf("trial %d: noiseless fixed-rate round trip failed", trial)
		}
	}
}

func TestFixedRateUnderNoise(t *testing.T) {
	// Rate 2 bits/symbol (4 passes of a k=8 code) at 12 dB (capacity ~4):
	// essentially every block should decode.
	p := DefaultParams()
	f, _ := NewFixedRate(p, 4, 16)
	ch, _ := channel.NewAWGNdB(12, rng.New(3))
	src := rng.New(4)
	correct := 0
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		msg := RandomMessage(src, p.MessageBits)
		block, _ := f.Encode(msg)
		rx := make([]complex128, len(block))
		for i, x := range block {
			rx[i] = ch.Corrupt(x)
		}
		got, err := f.Decode(rx)
		if err != nil {
			t.Fatal(err)
		}
		if EqualMessages(got, msg, p.MessageBits) {
			correct++
		}
	}
	if correct < trials-2 {
		t.Fatalf("only %d/%d fixed-rate blocks decoded at 12 dB", correct, trials)
	}
}

func TestFixedRateFailsAboveCapacity(t *testing.T) {
	// One pass (8 bits/symbol) at 6 dB (capacity ~2.6) cannot work: most
	// blocks must fail, demonstrating why the rateless mode matters.
	p := DefaultParams()
	f, _ := NewFixedRate(p, 1, 16)
	ch, _ := channel.NewAWGNdB(6, rng.New(5))
	src := rng.New(6)
	correct := 0
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		msg := RandomMessage(src, p.MessageBits)
		block, _ := f.Encode(msg)
		rx := make([]complex128, len(block))
		for i, x := range block {
			rx[i] = ch.Corrupt(x)
		}
		got, _ := f.Decode(rx)
		if EqualMessages(got, msg, p.MessageBits) {
			correct++
		}
	}
	if correct > trials/2 {
		t.Fatalf("%d/%d blocks decoded far above capacity; something is wrong", correct, trials)
	}
}

func TestFixedRateDecodeLengthCheck(t *testing.T) {
	p := DefaultParams()
	f, _ := NewFixedRate(p, 2, 16)
	if _, err := f.Decode(make([]complex128, 5)); err == nil {
		t.Error("wrong block length accepted")
	}
}
