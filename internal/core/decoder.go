package core

import (
	"fmt"
	"math"
	"runtime"

	"spinal/internal/constellation"
	"spinal/internal/hash"
)

// BeamDecoder is the practical "graceful scale-down" decoder of §3.2. At each
// level of the decoding tree it expands every surviving node into 2^k
// children by replaying the encoder's hash, adds the distance between the
// replayed symbols and the received symbols to the path cost, and keeps only
// the B lowest-cost nodes. With an unbounded beam it is the exact ML decoder
// of Eq. 4.
//
// Levels for which no symbols have been received (punctured spine values) are
// expanded without pruning, up to MaxCandidates nodes, so that later
// observations can still disambiguate them; this is what allows decoding from
// fewer than n/k symbols and therefore rates above k bits/symbol.
//
// The decoder is incremental across attempts: it keeps a workspace with the
// per-level frontiers, the pre-pruning child expansions and their
// per-level observation costs from the previous Decode call. When the same
// observation container is decoded again after new symbols arrived, the beam
// search resumes from the first dirty level, and levels whose parent frontier
// is structurally unchanged refresh cached children with only the cost of the
// new observations — no hash replay and no recomputation of symbols for
// passes already folded in. A transmission that needs P passes therefore
// costs O(P) total expansion work instead of the O(P²) of from-scratch
// attempts, while producing bit-identical results (the refresh performs the
// exact same floating-point additions, in the same order, that a full rerun
// would). Use SetIncremental(false) to force every attempt from the root.
// Decoding is also parallel within each level: the parent frontier is
// sharded across worker goroutines, each expanding into a private top-keep
// selector, and a deterministic merge reduces the per-worker selections into
// the global frontier. Because the selector orders nodes by a strict total
// order — (cost, parent, seg) — the surviving set is the unique keep-smallest
// set of the level regardless of how the work was sharded, so parallel and
// serial decodes are bit-identical at any worker count. SetParallelism(1)
// restores the exact single-threaded path.
type BeamDecoder struct {
	p           Params
	b           int
	maxCand     int
	family      hash.Family
	mapper      constellation.Mapper
	incremental bool
	workers     int

	nodesExpanded  int
	nodesRefreshed int

	ws        decodeWorkspace
	pool      *decodePool
	par       []parShard
	region    parRegion
	shardBody func(worker int)
}

// unlimited is the beam width used by the ML decoder.
const unlimited = math.MaxInt32

// maxCandCap clamps the derived MaxCandidates value B·2^k for practical
// decoders: an unobserved (punctured) level is expanded without pruning, and
// without the clamp a wide beam with a large k would retain millions of
// nodes. SetMaxCandidates overrides the clamp when a caller really wants
// more; NewMLDecoder bypasses it entirely.
const maxCandCap = 1 << 16

// DefaultMaxCandidates returns the unobserved-level retention cap
// NewBeamDecoder installs for the given parameters and beam width: B·2^k,
// clamped to an implementation bound. DecoderPool.Release uses it to restore
// a decoder whose cap was overridden, so pooled decoders always come back
// configured exactly like freshly constructed ones.
func DefaultMaxCandidates(p Params, beamWidth int) int {
	maxCand := beamWidth << uint(p.K)
	if maxCand > maxCandCap || maxCand <= 0 {
		maxCand = maxCandCap
	}
	return maxCand
}

// NewBeamDecoder returns a decoder with the given beam width B (the maximum
// number of tree nodes retained per level). The cap on retained nodes at
// unobserved levels defaults to B·2^k, clamped to maxCandCap.
func NewBeamDecoder(p Params, beamWidth int) (*BeamDecoder, error) {
	return newBeamDecoder(p, beamWidth, DefaultMaxCandidates(p, beamWidth))
}

// NewMLDecoder returns the exact maximum-likelihood decoder: a beam decoder
// that never prunes, at any level. Its complexity is exponential in the
// message length, so it is practical only for short messages; it exists as
// the reference the practical decoder scales down from.
func NewMLDecoder(p Params) (*BeamDecoder, error) {
	return newBeamDecoder(p, unlimited, unlimited)
}

// newBeamDecoder is the shared constructor; maxCand is taken as given so that
// the unlimited (ML) case needs no clamp workarounds.
func newBeamDecoder(p Params, beamWidth, maxCand int) (*BeamDecoder, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if beamWidth < 1 {
		return nil, fmt.Errorf("core: beam width must be >= 1, got %d", beamWidth)
	}
	mapper, err := p.mapper()
	if err != nil {
		return nil, err
	}
	return &BeamDecoder{
		p:           p,
		b:           beamWidth,
		maxCand:     maxCand,
		family:      p.family(),
		mapper:      mapper,
		incremental: true,
		workers:     runtime.GOMAXPROCS(0),
	}, nil
}

// BeamWidth returns the configured beam width B.
func (d *BeamDecoder) BeamWidth() int { return d.b }

// MaxCandidates returns the cap on retained nodes at punctured levels.
func (d *BeamDecoder) MaxCandidates() int { return d.maxCand }

// SetMaxCandidates overrides the cap on nodes retained at levels with no
// observations. Larger values make decoding from heavily punctured streams
// more reliable at the cost of more work.
func (d *BeamDecoder) SetMaxCandidates(n int) error {
	if n < d.b {
		return fmt.Errorf("core: max candidates %d must be at least the beam width %d", n, d.b)
	}
	d.maxCand = n
	d.ws.invalidate()
	return nil
}

// SetIncremental enables or disables reuse of the previous attempt's
// workspace. It is on by default; turning it off makes every Decode run from
// the root, which is the from-scratch baseline used by benchmarks and the
// equivalence tests.
func (d *BeamDecoder) SetIncremental(on bool) {
	d.incremental = on
	if !on {
		d.ws.invalidate()
	}
}

// Incremental reports whether workspace reuse is enabled.
func (d *BeamDecoder) Incremental() bool { return d.incremental }

// NodesExpanded reports the number of tree nodes freshly expanded (one hash
// evaluation plus a full cost computation each) by the most recent Decode
// call; it is the decoder's computational cost in the paper's unit of work.
// Cached nodes whose costs were merely refreshed are counted separately by
// NodesRefreshed.
func (d *BeamDecoder) NodesExpanded() int { return d.nodesExpanded }

// NodesRefreshed reports the number of cached tree nodes whose costs were
// updated in place by the most recent Decode call — no hash replay, only the
// cost terms of observations that arrived since the node's level was last
// folded.
func (d *BeamDecoder) NodesRefreshed() int { return d.nodesRefreshed }

// DecodeResult is the outcome of one decode attempt.
type DecodeResult struct {
	// Message is the most likely message found, packed LSB-first.
	Message []byte
	// Cost is the accumulated distance of the returned message's symbols to
	// the observations (squared Euclidean for AWGN, Hamming for BSC).
	Cost float64
	// NodesExpanded is the number of decoding-tree nodes freshly evaluated
	// (hash replay plus full cost) in this attempt.
	NodesExpanded int
	// NodesRefreshed is the number of cached nodes reused from the previous
	// attempt with an in-place cost update.
	NodesRefreshed int
}

// Decode runs the beam search against AWGN-channel observations and returns
// the most likely message under the received symbols so far. Repeated calls
// with the same container resume incrementally from the first level whose
// observations changed.
func (d *BeamDecoder) Decode(obs *Observations) (*DecodeResult, error) {
	if obs == nil {
		return nil, fmt.Errorf("core: nil observations")
	}
	if obs.NumSegments() != d.p.NumSegments() {
		return nil, fmt.Errorf("core: observations sized for %d segments, decoder for %d",
			obs.NumSegments(), d.p.NumSegments())
	}
	coster := &awgnCoster{d: d, obs: obs}
	out := d.run(coster, obs, obs.Generation(), obs.Epoch(), obs.cleanGen, obs.DirtyLevel())
	obs.MarkClean()
	return out, nil
}

// DecodeBits runs the beam search against binary-channel observations using
// the Hamming metric, which is the ML rule for the BSC (§3.2). It is
// incremental in the same way as Decode.
func (d *BeamDecoder) DecodeBits(obs *BitObservations) (*DecodeResult, error) {
	if obs == nil {
		return nil, fmt.Errorf("core: nil observations")
	}
	if obs.NumSegments() != d.p.NumSegments() {
		return nil, fmt.Errorf("core: observations sized for %d segments, decoder for %d",
			obs.NumSegments(), d.p.NumSegments())
	}
	coster := &bscCoster{d: d, obs: obs}
	out := d.run(coster, obs, obs.Generation(), obs.Epoch(), obs.cleanGen, obs.DirtyLevel())
	obs.MarkClean()
	return out, nil
}

// levelCoster computes observation costs for hypothesized spine values at a
// tree level. costAll left-folds every observation at the level in recording
// order; costOne returns the single term of observation idx. The incremental
// refresh extends cached sums with costOne term by term, which performs the
// exact same floating-point additions, in the same order, as costAll would —
// that is what makes incremental and from-scratch decodes bit-identical.
type levelCoster interface {
	numObs(level int) int
	costAll(spine uint64, level int) float64
	costOne(spine uint64, level, idx int) float64
}

type awgnCoster struct {
	d   *BeamDecoder
	obs *Observations
}

func (c *awgnCoster) numObs(level int) int { return len(c.obs.spines[level]) }

func (c *awgnCoster) term(spine uint64, ob symbolObs) float64 {
	x := symbolFor(c.d.family, c.d.mapper, c.d.p.C, spine, ob.pass)
	dI := real(ob.y) - real(x)
	dQ := imag(ob.y) - imag(x)
	return dI*dI + dQ*dQ
}

func (c *awgnCoster) costAll(spine uint64, level int) float64 {
	var sum float64
	for _, ob := range c.obs.spines[level] {
		sum += c.term(spine, ob)
	}
	return sum
}

func (c *awgnCoster) costOne(spine uint64, level, idx int) float64 {
	return c.term(spine, c.obs.spines[level][idx])
}

type bscCoster struct {
	d   *BeamDecoder
	obs *BitObservations
}

func (c *bscCoster) numObs(level int) int { return len(c.obs.spines[level]) }

func (c *bscCoster) costAll(spine uint64, level int) float64 {
	var sum float64
	for _, ob := range c.obs.spines[level] {
		if codedBitFor(c.d.family, spine, ob.pass) != ob.bit {
			sum++
		}
	}
	return sum
}

func (c *bscCoster) costOne(spine uint64, level, idx int) float64 {
	ob := c.obs.spines[level][idx]
	if codedBitFor(c.d.family, spine, ob.pass) != ob.bit {
		return 1
	}
	return 0
}

// treeNode is one node of the (pruned) decoding tree.
type treeNode struct {
	spine  uint64
	cost   float64
	parent int32
	seg    uint16
}

// childNode is one pre-pruning expansion of a frontier node: the child spine
// value, the accumulated cost of this level's observations against it (the
// memoized symbolFor/codedBitFor work), and the (parent, seg) pair that
// produced it. Cumulative path costs are reconstituted as
// parent.cost + local at selection time, so cached children stay valid when
// upstream costs shift without structural change.
type childNode struct {
	spine  uint64
	local  float64
	parent int32
	seg    uint16
}

// cachedLevel is the per-level workspace state retained between attempts.
type cachedLevel struct {
	// children is the full expansion of the parent frontier in deterministic
	// (parent-major, segment-minor) order; childObs observations at this
	// level are folded into each child's local cost. valid reports whether
	// children corresponds to the frontier the level was last expanded from.
	children []childNode
	childObs int
	valid    bool
	// frontier is the selection output of the latest attempt at this level;
	// prev is the one before it (the frontier `children` of the next level
	// were expanded from). The two slices are swapped, not copied, when the
	// level is re-selected.
	frontier []treeNode
	prev     []treeNode
}

// maxCachedChildren bounds the memory the workspace spends per level: an
// unobserved level expanded from a maxCand-wide parent frontier can produce
// maxCand·2^k children, far more than is worth materializing. Levels whose
// expansion exceeds the bound are re-expanded from scratch on every attempt
// (exactly the pre-incremental behavior) instead of cached.
const maxCachedChildren = 1 << 17

// decodeWorkspace is the persistent state that makes repeated decode attempts
// incremental. It is owned by one BeamDecoder and keyed to one observation
// container at a time.
type decodeWorkspace struct {
	// obs identifies the observation container the cached state was built
	// from; a different container (or channel kind) resets the workspace.
	obs any
	// gen is the container generation at the end of the last attempt.
	gen uint64
	// epoch is the container epoch of the last attempt; a Reset starts a new
	// epoch, after which cached cost sums no longer describe the contents.
	epoch uint64
	// levels caches frontiers and expansions per tree level.
	levels []cachedLevel
	// complete reports that the last attempt ran to completion, making the
	// cached state trustworthy.
	complete bool
	// sel is the reusable top-B selector.
	sel selector
	// segs is the reusable backtrack buffer.
	segs []uint64
	// scratch is a reusable assembly buffer for rebuilt child expansions.
	scratch []childNode
	// pidx is a reusable spine→index map over a parent frontier (at most
	// MaxCandidates entries), used to match persisting parents between
	// attempts so their children blocks can be reused wholesale.
	pidx map[uint64]int32
}

// invalidate discards all cached state (the buffers are kept for reuse).
func (ws *decodeWorkspace) invalidate() {
	ws.obs = nil
	ws.complete = false
	for i := range ws.levels {
		ws.levels[i].valid = false
		ws.levels[i].frontier = ws.levels[i].frontier[:0]
		ws.levels[i].prev = ws.levels[i].prev[:0]
	}
}

// prepare sizes the workspace for nseg levels and decides which level the
// beam search must resume from for this attempt.
func (ws *decodeWorkspace) prepare(obs any, epoch, cleanGen uint64, dirty, nseg int, incremental bool) int {
	if len(ws.levels) != nseg {
		ws.levels = make([]cachedLevel, nseg)
		ws.complete = false
		ws.obs = nil
	}
	if !incremental || ws.obs != obs || !ws.complete || epoch != ws.epoch {
		ws.invalidate()
		ws.obs = obs
		return 0
	}
	if cleanGen != ws.gen {
		// The last MarkClean was not ours: another consumer decoded (and
		// cleared the dirty watermark) after observations we have not seen,
		// so the dirty level no longer covers everything that changed since
		// our own last attempt. Forfeit reuse rather than trust it.
		ws.invalidate()
		ws.obs = obs
		return 0
	}
	if dirty > nseg {
		dirty = nseg
	}
	return dirty
}

// run executes the level-by-level beam search, resuming from the first dirty
// level when the workspace holds a completed previous attempt for the same
// observation container.
func (d *BeamDecoder) run(coster levelCoster, obs any, gen, epoch, cleanGen uint64, dirty int) *DecodeResult {
	nseg := d.p.NumSegments()
	ws := &d.ws
	start := ws.prepare(obs, epoch, cleanGen, dirty, nseg, d.incremental)
	d.nodesExpanded = 0
	d.nodesRefreshed = 0

	// parentOK tracks whether the previous level's frontier is structurally
	// identical (same spine/parent/seg in the same order) to the one the
	// cached children of the current level were expanded from. At the resume
	// level it holds by construction: everything above the first dirty level
	// is untouched. oldParent is the frontier those children were expanded
	// from, kept for block-level reuse when the structure did change.
	parentOK := true
	var oldParent []treeNode
	if start > 0 {
		oldParent = ws.levels[start-1].frontier // unchanged above the dirty level
	} else {
		oldParent = rootFrontier
	}
	for t := start; t < nseg; t++ {
		var parent []treeNode
		if t > 0 {
			parent = ws.levels[t-1].frontier
		} else {
			parent = rootFrontier
		}
		lv := &ws.levels[t]
		nObs := coster.numObs(t)

		keep := d.b
		if nObs == 0 {
			keep = d.maxCand
		}
		ws.sel.reset(keep)

		nSeg := 1 << uint(d.p.SegmentBits(t))
		switch {
		case parentOK && lv.valid:
			// Cached expansion: fold in only the observations that arrived
			// since the last attempt, one term at a time so the running sum
			// stays bit-identical to a from-scratch fold. Symbols for passes
			// already folded in are never recomputed, and no hash is replayed.
			if w := d.workersFor(len(lv.children)); w > 1 {
				d.runRegion(w, parRegion{kind: regionRefresh, coster: coster, lv: lv,
					parent: parent, t: t, nObs: nObs, units: len(lv.children), keep: keep})
			} else {
				d.nodesRefreshed += d.refreshRange(coster, lv, parent, t, nObs, 0, len(lv.children), &ws.sel)
			}
			lv.childObs = nObs

		case d.incremental && len(parent)*nSeg <= maxCachedChildren:
			// The parent frontier changed structurally, so the cached
			// expansion no longer lines up index-for-index. But a parent
			// that persisted (same spine value) still produces the exact
			// same children block — child spines and this level's
			// observation costs depend only on the parent spine — so index
			// the old parents by spine and reuse whole blocks, extending
			// their cost sums term by term to the current observations.
			// Only children of genuinely new parents are expanded by hash
			// replay with a full cost computation.
			reuse := lv.valid && len(oldParent) > 0 && len(lv.children) == len(oldParent)*nSeg
			if reuse {
				if ws.pidx == nil {
					ws.pidx = make(map[uint64]int32, len(oldParent))
				} else {
					clear(ws.pidx)
				}
				for i := range oldParent {
					if _, dup := ws.pidx[oldParent[i].spine]; !dup {
						ws.pidx[oldParent[i].spine] = int32(i)
					}
				}
			}
			need := len(parent) * nSeg
			if cap(ws.scratch) < need {
				ws.scratch = make([]childNode, need)
			}
			newChildren := ws.scratch[:need]
			if w := d.workersFor(need); w > 1 {
				d.runRegion(w, parRegion{kind: regionRebuild, coster: coster, lv: lv,
					parent: parent, t: t, nObs: nObs, nSeg: nSeg, reuse: reuse,
					out: newChildren, units: len(parent), keep: keep})
			} else {
				e, r := d.rebuildRange(coster, lv, parent, t, nObs, nSeg, reuse, 0, len(parent), newChildren, &ws.sel)
				d.nodesExpanded += e
				d.nodesRefreshed += r
			}
			ws.scratch, lv.children = lv.children[:0], newChildren
			lv.childObs = nObs
			lv.valid = true

		default:
			// Over-budget (or non-incremental) expansion: stream children
			// straight through the selector without materializing them —
			// the pre-incremental behavior and memory footprint.
			lv.children = lv.children[:0]
			lv.valid = false
			if w := d.workersFor(len(parent) * nSeg); w > 1 {
				d.runRegion(w, parRegion{kind: regionStream, coster: coster,
					parent: parent, t: t, nSeg: nSeg, units: len(parent), keep: keep})
			} else {
				d.nodesExpanded += d.streamRange(coster, parent, t, nSeg, 0, len(parent), &ws.sel)
			}
			lv.childObs = nObs
		}

		// Canonicalize the selection to (parent, seg) order. The heap's
		// internal order depends on cost values, so without this step any
		// cost perturbation would reshuffle the frontier and defeat the
		// structural-reuse check above even when the same B nodes survive.
		// The order is deterministic, so from-scratch and incremental runs
		// still agree exactly.
		newFrontier := ws.sel.canonical()

		// Stash this level's previous frontier for the next level's block
		// matching, compare structures, and install the new frontier. If the
		// structure held, the next level's cached children (keyed by parent
		// index and segment) remain valid even though the costs moved.
		parentOK = sameStructure(newFrontier, lv.frontier)
		lv.prev, lv.frontier = lv.frontier, append(lv.prev[:0], newFrontier...)
		oldParent = lv.prev
	}

	// Locate the lowest-cost leaf and walk back up the tree to recover the
	// message segments.
	leaves := ws.levels[nseg-1].frontier
	best := 0
	for i := 1; i < len(leaves); i++ {
		if leaves[i].cost < leaves[best].cost {
			best = i
		}
	}
	if cap(ws.segs) < nseg {
		ws.segs = make([]uint64, nseg)
	}
	segs := ws.segs[:nseg]
	idx := int32(best)
	for t := nseg - 1; t >= 0; t-- {
		n := ws.levels[t].frontier[idx]
		segs[t] = uint64(n.seg)
		idx = n.parent
	}
	ws.gen = gen
	ws.epoch = epoch
	ws.complete = true
	return &DecodeResult{
		Message:        packSegments(d.p, segs),
		Cost:           leaves[best].cost,
		NodesExpanded:  d.nodesExpanded,
		NodesRefreshed: d.nodesRefreshed,
	}
}

// refreshRange is the cached-expansion path for children[lo:hi): extend each
// cached child's local cost sum with the observation terms that arrived since
// the level was last folded, then offer the reconstituted path cost to sel.
// Each child's sum is extended term by term in recording order — the exact
// same floating-point additions a from-scratch fold would perform — so the
// result does not depend on how the range was sharded. Returns the number of
// cached nodes reused.
func (d *BeamDecoder) refreshRange(coster levelCoster, lv *cachedLevel, parent []treeNode, t, nObs, lo, hi int, sel *selector) int {
	for i := lo; i < hi; i++ {
		c := &lv.children[i]
		for j := lv.childObs; j < nObs; j++ {
			c.local += coster.costOne(c.spine, t, j)
		}
		base := 0.0
		if t > 0 {
			base = parent[c.parent].cost
		}
		sel.offer(treeNode{spine: c.spine, cost: base + c.local, parent: c.parent, seg: c.seg})
	}
	return hi - lo
}

// rebuildRange expands parents[lo:hi) into their children, writing each
// parent's block at its global offset pi*nSeg in out and offering every child
// to sel. Parents that persisted from the previous frontier (found through
// ws.pidx when reuse is set) have their cached children blocks reused with a
// term-by-term cost extension; new parents are expanded by hash replay with a
// full cost fold. Returns (freshly expanded, refreshed) node counts.
func (d *BeamDecoder) rebuildRange(coster levelCoster, lv *cachedLevel, parent []treeNode, t, nObs, nSeg int, reuse bool, lo, hi int, out []childNode, sel *selector) (expanded, refreshed int) {
	ws := &d.ws
	for pi := lo; pi < hi; pi++ {
		ps := parent[pi].spine
		base := 0.0
		if t > 0 {
			base = parent[pi].cost
		}
		block := -1
		if reuse {
			if j, ok := ws.pidx[ps]; ok {
				block = int(j) * nSeg
			}
		}
		for seg := 0; seg < nSeg; seg++ {
			var s uint64
			var local float64
			if block >= 0 {
				old := &lv.children[block+seg]
				s = old.spine
				local = old.local
				for j := lv.childObs; j < nObs; j++ {
					local += coster.costOne(s, t, j)
				}
				refreshed++
			} else {
				s = d.family.Next(ps, uint64(seg))
				local = coster.costAll(s, t)
				expanded++
			}
			out[pi*nSeg+seg] = childNode{spine: s, local: local, parent: int32(pi), seg: uint16(seg)}
			sel.offer(treeNode{spine: s, cost: base + local, parent: int32(pi), seg: uint16(seg)})
		}
	}
	return expanded, refreshed
}

// streamRange expands parents[lo:hi) straight through the selector without
// materializing the children — the over-budget and non-incremental path.
// Returns the number of nodes expanded.
func (d *BeamDecoder) streamRange(coster levelCoster, parent []treeNode, t, nSeg, lo, hi int, sel *selector) int {
	for pi := lo; pi < hi; pi++ {
		ps := parent[pi].spine
		base := 0.0
		if t > 0 {
			base = parent[pi].cost
		}
		for seg := 0; seg < nSeg; seg++ {
			s := d.family.Next(ps, uint64(seg))
			local := coster.costAll(s, t)
			sel.offer(treeNode{spine: s, cost: base + local, parent: int32(pi), seg: uint16(seg)})
		}
	}
	return (hi - lo) * nSeg
}

// rootFrontier is the virtual level -1 frontier: the single root node with
// the agreed initial spine value s0 = 0 and zero cost.
var rootFrontier = []treeNode{{spine: 0, cost: 0, parent: -1}}

// sameStructure reports whether two frontiers contain the same nodes — same
// spine, parent and segment — in the same order. Costs are deliberately not
// compared: downstream caches reconstruct cumulative costs from the parent
// frontier at selection time, so only structural change invalidates them.
func sameStructure(a, b []treeNode) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].spine != b[i].spine || a[i].parent != b[i].parent || a[i].seg != b[i].seg {
			return false
		}
	}
	return true
}

// nodeLess is the strict total order the beam selection is defined over:
// cost first, then (parent, seg) as the tie-break. Because every (parent,
// seg) pair is unique within a level the order has no ties, so the `keep`
// smallest nodes of a level are a unique set — independent of the order in
// which candidates are offered. That independence is what makes sharded
// (parallel) expansion bit-identical to serial expansion: each shard retains
// its own keep-smallest subset, and the merged keep-smallest of those
// subsets equals the keep-smallest of the whole level.
func nodeLess(a, b *treeNode) bool {
	if a.cost != b.cost {
		return a.cost < b.cost
	}
	if a.parent != b.parent {
		return a.parent < b.parent
	}
	return a.seg < b.seg
}

// selector retains the `keep` smallest nodes (under nodeLess) offered to it,
// using a bounded max-heap. The node buffer is reused across decode attempts
// via reset.
type selector struct {
	keep  int
	nodes []treeNode
}

func newSelector(keep int) *selector {
	s := &selector{}
	s.reset(keep)
	return s
}

// reset empties the selector and sets its retention bound, keeping the
// underlying buffer.
func (s *selector) reset(keep int) {
	capHint := keep
	if capHint > 4096 {
		capHint = 4096
	}
	if cap(s.nodes) < capHint {
		s.nodes = make([]treeNode, 0, capHint)
	}
	s.nodes = s.nodes[:0]
	s.keep = keep
}

func (s *selector) offer(n treeNode) {
	if len(s.nodes) < s.keep {
		s.nodes = append(s.nodes, n)
		s.siftUp(len(s.nodes) - 1)
		return
	}
	if !nodeLess(&n, &s.nodes[0]) {
		return
	}
	s.nodes[0] = n
	s.siftDown(0)
}

func (s *selector) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !nodeLess(&s.nodes[parent], &s.nodes[i]) {
			break
		}
		s.nodes[parent], s.nodes[i] = s.nodes[i], s.nodes[parent]
		i = parent
	}
}

func (s *selector) siftDown(i int) {
	n := len(s.nodes)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		largest := left
		if right := left + 1; right < n && nodeLess(&s.nodes[left], &s.nodes[right]) {
			largest = right
		}
		if !nodeLess(&s.nodes[i], &s.nodes[largest]) {
			return
		}
		s.nodes[i], s.nodes[largest] = s.nodes[largest], s.nodes[i]
		i = largest
	}
}

// items returns the retained nodes in arbitrary (but deterministic) order.
func (s *selector) items() []treeNode { return s.nodes }

// canonical returns the retained nodes sorted by (parent, seg) — the order
// the children were generated in. Unlike the raw heap order it does not
// depend on the cost values, so a frontier whose membership is unchanged
// between attempts compares structurally equal even though every cost moved.
func (s *selector) canonical() []treeNode {
	sortByParentSeg(s.nodes)
	return s.nodes
}

// parentSegLess orders nodes by (parent, seg) — the deterministic generation
// order of a level's children. Keys are unique within a level, so stability
// is not a concern.
func parentSegLess(a, b *treeNode) bool {
	if a.parent != b.parent {
		return a.parent < b.parent
	}
	return a.seg < b.seg
}

// sortByParentSeg sorts nodes by (parent, seg) with an in-place heapsort.
// It replaces a sort.Slice call on the per-level hot path: sort.Slice
// allocates a closure (and an interface header) on every call, while the
// heap drain allocates nothing.
func sortByParentSeg(nodes []treeNode) {
	n := len(nodes)
	for i := n/2 - 1; i >= 0; i-- {
		siftDownParentSeg(nodes, i, n)
	}
	for end := n - 1; end > 0; end-- {
		nodes[0], nodes[end] = nodes[end], nodes[0]
		siftDownParentSeg(nodes, 0, end)
	}
}

func siftDownParentSeg(nodes []treeNode, i, n int) {
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		largest := left
		if right := left + 1; right < n && parentSegLess(&nodes[left], &nodes[right]) {
			largest = right
		}
		if !parentSegLess(&nodes[i], &nodes[largest]) {
			return
		}
		nodes[i], nodes[largest] = nodes[largest], nodes[i]
		i = largest
	}
}
