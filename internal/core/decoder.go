package core

import (
	"fmt"
	"math"

	"spinal/internal/constellation"
	"spinal/internal/hash"
)

// BeamDecoder is the practical "graceful scale-down" decoder of §3.2. At each
// level of the decoding tree it expands every surviving node into 2^k
// children by replaying the encoder's hash, adds the distance between the
// replayed symbols and the received symbols to the path cost, and keeps only
// the B lowest-cost nodes. With an unbounded beam it is the exact ML decoder
// of Eq. 4.
//
// Levels for which no symbols have been received (punctured spine values) are
// expanded without pruning, up to MaxCandidates nodes, so that later
// observations can still disambiguate them; this is what allows decoding from
// fewer than n/k symbols and therefore rates above k bits/symbol.
type BeamDecoder struct {
	p       Params
	b       int
	maxCand int
	family  hash.Family
	mapper  constellation.Mapper

	nodesExpanded int
}

// unlimited is the beam width used by the ML decoder.
const unlimited = math.MaxInt32

// NewBeamDecoder returns a decoder with the given beam width B (the maximum
// number of tree nodes retained per level).
func NewBeamDecoder(p Params, beamWidth int) (*BeamDecoder, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if beamWidth < 1 {
		return nil, fmt.Errorf("core: beam width must be >= 1, got %d", beamWidth)
	}
	mapper, err := p.mapper()
	if err != nil {
		return nil, err
	}
	maxCand := beamWidth << uint(p.K)
	const maxCandCap = 1 << 16
	if maxCand > maxCandCap || maxCand <= 0 {
		maxCand = maxCandCap
	}
	return &BeamDecoder{
		p:       p,
		b:       beamWidth,
		maxCand: maxCand,
		family:  p.family(),
		mapper:  mapper,
	}, nil
}

// NewMLDecoder returns the exact maximum-likelihood decoder: a beam decoder
// that never prunes. Its complexity is exponential in the message length, so
// it is practical only for short messages; it exists as the reference the
// practical decoder scales down from.
func NewMLDecoder(p Params) (*BeamDecoder, error) {
	d, err := NewBeamDecoder(p, unlimited)
	if err != nil {
		return nil, err
	}
	d.b = unlimited
	d.maxCand = unlimited
	return d, nil
}

// BeamWidth returns the configured beam width B.
func (d *BeamDecoder) BeamWidth() int { return d.b }

// MaxCandidates returns the cap on retained nodes at punctured levels.
func (d *BeamDecoder) MaxCandidates() int { return d.maxCand }

// SetMaxCandidates overrides the cap on nodes retained at levels with no
// observations. Larger values make decoding from heavily punctured streams
// more reliable at the cost of more work.
func (d *BeamDecoder) SetMaxCandidates(n int) error {
	if n < d.b {
		return fmt.Errorf("core: max candidates %d must be at least the beam width %d", n, d.b)
	}
	d.maxCand = n
	return nil
}

// NodesExpanded reports the number of tree nodes expanded by the most recent
// Decode call; it is the decoder's computational cost in units of one hash
// evaluation plus one cost update.
func (d *BeamDecoder) NodesExpanded() int { return d.nodesExpanded }

// DecodeResult is the outcome of one decode attempt.
type DecodeResult struct {
	// Message is the most likely message found, packed LSB-first.
	Message []byte
	// Cost is the accumulated distance of the returned message's symbols to
	// the observations (squared Euclidean for AWGN, Hamming for BSC).
	Cost float64
	// NodesExpanded is the number of decoding-tree nodes evaluated.
	NodesExpanded int
}

// Decode runs the beam search against AWGN-channel observations and returns
// the most likely message under the received symbols so far.
func (d *BeamDecoder) Decode(obs *Observations) (*DecodeResult, error) {
	if obs == nil {
		return nil, fmt.Errorf("core: nil observations")
	}
	if obs.NumSegments() != d.p.NumSegments() {
		return nil, fmt.Errorf("core: observations sized for %d segments, decoder for %d",
			obs.NumSegments(), d.p.NumSegments())
	}
	coster := &awgnCoster{d: d, obs: obs}
	return d.run(coster)
}

// DecodeBits runs the beam search against binary-channel observations using
// the Hamming metric, which is the ML rule for the BSC (§3.2).
func (d *BeamDecoder) DecodeBits(obs *BitObservations) (*DecodeResult, error) {
	if obs == nil {
		return nil, fmt.Errorf("core: nil observations")
	}
	if obs.NumSegments() != d.p.NumSegments() {
		return nil, fmt.Errorf("core: observations sized for %d segments, decoder for %d",
			obs.NumSegments(), d.p.NumSegments())
	}
	coster := &bscCoster{d: d, obs: obs}
	return d.run(coster)
}

// levelCoster computes the incremental cost of hypothesizing a spine value at
// a tree level, and reports whether any symbols were received for that level.
type levelCoster interface {
	observed(level int) bool
	cost(spine uint64, level int) float64
}

type awgnCoster struct {
	d   *BeamDecoder
	obs *Observations
}

func (c *awgnCoster) observed(level int) bool { return len(c.obs.spines[level]) > 0 }

func (c *awgnCoster) cost(spine uint64, level int) float64 {
	var sum float64
	for _, ob := range c.obs.spines[level] {
		x := symbolFor(c.d.family, c.d.mapper, c.d.p.C, spine, ob.pass)
		dI := real(ob.y) - real(x)
		dQ := imag(ob.y) - imag(x)
		sum += dI*dI + dQ*dQ
	}
	return sum
}

type bscCoster struct {
	d   *BeamDecoder
	obs *BitObservations
}

func (c *bscCoster) observed(level int) bool { return len(c.obs.spines[level]) > 0 }

func (c *bscCoster) cost(spine uint64, level int) float64 {
	var sum float64
	for _, ob := range c.obs.spines[level] {
		if codedBitFor(c.d.family, spine, ob.pass) != ob.bit {
			sum++
		}
	}
	return sum
}

// treeNode is one node of the (pruned) decoding tree.
type treeNode struct {
	spine  uint64
	cost   float64
	parent int32
	seg    uint16
}

// run executes the level-by-level beam search.
func (d *BeamDecoder) run(coster levelCoster) (*DecodeResult, error) {
	nseg := d.p.NumSegments()
	levels := make([][]treeNode, nseg)
	frontier := []treeNode{{spine: 0, cost: 0, parent: -1}}
	d.nodesExpanded = 0

	for t := 0; t < nseg; t++ {
		keep := d.b
		if !coster.observed(t) {
			keep = d.maxCand
		}
		sel := newSelector(keep)
		for pi := range frontier {
			parent := &frontier[pi]
			nSeg := 1 << uint(d.p.SegmentBits(t))
			for seg := 0; seg < nSeg; seg++ {
				s := d.family.Next(parent.spine, uint64(seg))
				c := parent.cost + coster.cost(s, t)
				sel.offer(treeNode{spine: s, cost: c, parent: int32(pi), seg: uint16(seg)})
				d.nodesExpanded++
			}
		}
		frontier = sel.items()
		levels[t] = frontier
	}

	// Locate the lowest-cost leaf and walk back up the tree to recover the
	// message segments.
	best := 0
	for i := 1; i < len(frontier); i++ {
		if frontier[i].cost < frontier[best].cost {
			best = i
		}
	}
	segs := make([]uint64, nseg)
	idx := int32(best)
	for t := nseg - 1; t >= 0; t-- {
		n := levels[t][idx]
		segs[t] = uint64(n.seg)
		idx = n.parent
	}
	return &DecodeResult{
		Message:       packSegments(d.p, segs),
		Cost:          frontier[best].cost,
		NodesExpanded: d.nodesExpanded,
	}, nil
}

// selector retains the `keep` lowest-cost nodes offered to it, using a
// bounded max-heap keyed on cost.
type selector struct {
	keep  int
	nodes []treeNode
}

func newSelector(keep int) *selector {
	capHint := keep
	if capHint > 4096 {
		capHint = 4096
	}
	return &selector{keep: keep, nodes: make([]treeNode, 0, capHint)}
}

func (s *selector) offer(n treeNode) {
	if len(s.nodes) < s.keep {
		s.nodes = append(s.nodes, n)
		s.siftUp(len(s.nodes) - 1)
		return
	}
	if n.cost >= s.nodes[0].cost {
		return
	}
	s.nodes[0] = n
	s.siftDown(0)
}

func (s *selector) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if s.nodes[parent].cost >= s.nodes[i].cost {
			break
		}
		s.nodes[parent], s.nodes[i] = s.nodes[i], s.nodes[parent]
		i = parent
	}
}

func (s *selector) siftDown(i int) {
	n := len(s.nodes)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		largest := left
		if right := left + 1; right < n && s.nodes[right].cost > s.nodes[left].cost {
			largest = right
		}
		if s.nodes[i].cost >= s.nodes[largest].cost {
			return
		}
		s.nodes[i], s.nodes[largest] = s.nodes[largest], s.nodes[i]
		i = largest
	}
}

// items returns the retained nodes in arbitrary order.
func (s *selector) items() []treeNode { return s.nodes }
