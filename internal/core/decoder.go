package core

import (
	"fmt"
	"math"
	"runtime"

	"spinal/internal/constellation"
	"spinal/internal/hash"
)

// BeamDecoder is the practical "graceful scale-down" decoder of §3.2. At each
// level of the decoding tree it expands every surviving node into 2^k
// children by replaying the encoder's hash, adds the distance between the
// replayed symbols and the received symbols to the path cost, and keeps only
// the B lowest-cost nodes. With an unbounded beam it is the exact ML decoder
// of Eq. 4.
//
// Levels for which no symbols have been received (punctured spine values) are
// expanded without pruning, up to MaxCandidates nodes, so that later
// observations can still disambiguate them; this is what allows decoding from
// fewer than n/k symbols and therefore rates above k bits/symbol.
//
// The decoder is incremental across attempts: it keeps a workspace with the
// per-level frontiers, the pre-pruning child expansions and their
// per-level observation costs from the previous Decode call. When the same
// observation container is decoded again after new symbols arrived, the beam
// search resumes from the first dirty level, and levels whose parent frontier
// is structurally unchanged refresh cached children with only the cost of the
// new observations — no hash replay and no recomputation of symbols for
// passes already folded in. A transmission that needs P passes therefore
// costs O(P) total expansion work instead of the O(P²) of from-scratch
// attempts, while producing bit-identical results (the refresh performs the
// exact same floating-point additions, in the same order, that a full rerun
// would). Use SetIncremental(false) to force every attempt from the root.
// Decoding is also parallel within each level: the parent frontier is
// sharded across worker goroutines, each expanding into a private top-keep
// selector, and a deterministic merge reduces the per-worker selections into
// the global frontier. Because the selector orders nodes by a strict total
// order — (cost, parent, seg) — the surviving set is the unique keep-smallest
// set of the level regardless of how the work was sharded, so parallel and
// serial decodes are bit-identical at any worker count. SetParallelism(1)
// restores the exact single-threaded path.
//
// Search state lives in a structure-of-arrays engine (see engine.go),
// instantiated per cost metric: the default exact float64 metric, and the
// opt-in quantized int32 metric of SetCostMetric (fixed-point cost folds
// with saturating adds — the arithmetic a hardware decoder would ship).
type BeamDecoder struct {
	p       Params
	b       int
	maxCand int
	family  hash.Family
	mapper  constellation.Mapper
	// dimTab is the mapper's per-dimension coordinate table (nil for custom
	// mappers that do not expose one). The cost folds use it to replace the
	// per-symbol Mapper.Map interface call with two array loads — the same
	// float64 values, so decodes are unchanged.
	dimTab      []float64
	incremental bool
	workers     int
	metric      CostMetric
	// search is the normalized approximate-search strategy (see search.go);
	// the zero value is the exact search.
	search SearchConfig
	// quantTab is dimTab snapped onto the int32 metric's fixed-point grid,
	// built lazily the first time the quantized metric is selected.
	quantTab []int32

	nodesExpanded  int
	nodesRefreshed int
	nodesSaved     int

	// engF/engI are the per-metric search engines; engF always exists, engI
	// is created the first time the int32 metric is selected. They share the
	// worker pool.
	engF *engine[float64, f64Ops]
	engI *engine[int32, i32Ops]
	pool *decodePool

	// Reusable coster values, so Decode does not allocate one per call when
	// it passes them through the levelCoster interface.
	awgnC  awgnCoster
	bscC   bscCoster
	qawgnC awgnQuantCoster
	qbscC  bscQuantCoster
}

// unlimited is the beam width used by the ML decoder.
const unlimited = math.MaxInt32

// maxCandCap clamps the derived MaxCandidates value B·2^k for practical
// decoders: an unobserved (punctured) level is expanded without pruning, and
// without the clamp a wide beam with a large k would retain millions of
// nodes. SetMaxCandidates overrides the clamp when a caller really wants
// more; NewMLDecoder bypasses it entirely.
const maxCandCap = 1 << 16

// DefaultMaxCandidates returns the unobserved-level retention cap
// NewBeamDecoder installs for the given parameters and beam width: B·2^k,
// clamped to an implementation bound. DecoderPool.Release uses it to restore
// a decoder whose cap was overridden, so pooled decoders always come back
// configured exactly like freshly constructed ones.
func DefaultMaxCandidates(p Params, beamWidth int) int {
	maxCand := beamWidth << uint(p.K)
	if maxCand > maxCandCap || maxCand <= 0 {
		maxCand = maxCandCap
	}
	return maxCand
}

// NewBeamDecoder returns a decoder with the given beam width B (the maximum
// number of tree nodes retained per level). The cap on retained nodes at
// unobserved levels defaults to B·2^k, clamped to maxCandCap.
func NewBeamDecoder(p Params, beamWidth int) (*BeamDecoder, error) {
	return newBeamDecoder(p, beamWidth, DefaultMaxCandidates(p, beamWidth))
}

// NewMLDecoder returns the exact maximum-likelihood decoder: a beam decoder
// that never prunes, at any level. Its complexity is exponential in the
// message length, so it is practical only for short messages; it exists as
// the reference the practical decoder scales down from.
func NewMLDecoder(p Params) (*BeamDecoder, error) {
	return newBeamDecoder(p, unlimited, unlimited)
}

// newBeamDecoder is the shared constructor; maxCand is taken as given so that
// the unlimited (ML) case needs no clamp workarounds.
func newBeamDecoder(p Params, beamWidth, maxCand int) (*BeamDecoder, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if beamWidth < 1 {
		return nil, fmt.Errorf("core: beam width must be >= 1, got %d", beamWidth)
	}
	mapper, err := p.mapper()
	if err != nil {
		return nil, err
	}
	d := &BeamDecoder{
		p:           p,
		b:           beamWidth,
		maxCand:     maxCand,
		family:      p.family(),
		mapper:      mapper,
		incremental: true,
		workers:     runtime.GOMAXPROCS(0),
	}
	if tm, ok := mapper.(constellation.TableMapper); ok {
		d.dimTab = tm.DimTable()
	}
	d.engF = newEngine[float64, f64Ops](d)
	return d, nil
}

// BeamWidth returns the configured beam width B.
func (d *BeamDecoder) BeamWidth() int { return d.b }

// MaxCandidates returns the cap on retained nodes at punctured levels.
func (d *BeamDecoder) MaxCandidates() int { return d.maxCand }

// SetMaxCandidates overrides the cap on nodes retained at levels with no
// observations. Larger values make decoding from heavily punctured streams
// more reliable at the cost of more work.
func (d *BeamDecoder) SetMaxCandidates(n int) error {
	if n < d.b {
		return fmt.Errorf("core: max candidates %d must be at least the beam width %d", n, d.b)
	}
	d.maxCand = n
	d.invalidateWorkspaces()
	return nil
}

// SetIncremental enables or disables reuse of the previous attempt's
// workspace. It is on by default; turning it off makes every Decode run from
// the root, which is the from-scratch baseline used by benchmarks and the
// equivalence tests.
func (d *BeamDecoder) SetIncremental(on bool) {
	d.incremental = on
	if !on {
		d.invalidateWorkspaces()
	}
}

// Incremental reports whether workspace reuse is enabled.
func (d *BeamDecoder) Incremental() bool { return d.incremental }

// SetCostMetric selects the arithmetic path costs accumulate in: the exact
// float64 default, or the opt-in quantized int32 metric (fixed-point grid,
// saturating adds). Switching metrics invalidates the incremental workspace
// — cached cost sums in one carrier do not describe the other — so the next
// Decode rebuilds from the root. The int32 metric derives its integer symbol
// grid from the mapper's per-dimension table and therefore requires a
// table-backed mapper (every built-in mapper qualifies).
func (d *BeamDecoder) SetCostMetric(m CostMetric) error {
	switch m {
	case CostFloat64:
	case CostInt32:
		if d.dimTab == nil {
			return fmt.Errorf("core: the int32 cost metric requires a table-backed constellation mapper (%s is not)", d.mapper.Name())
		}
		if d.quantTab == nil {
			tab := make([]int32, len(d.dimTab))
			for i, v := range d.dimTab {
				tab[i] = quantCoord(v)
			}
			d.quantTab = tab
		}
		if d.engI == nil {
			d.engI = newEngine[int32, i32Ops](d)
		}
	default:
		return fmt.Errorf("core: unknown cost metric %d", m)
	}
	if m == d.metric {
		return nil
	}
	d.metric = m
	d.invalidateWorkspaces()
	return nil
}

// CostMetric reports the configured cost metric.
func (d *BeamDecoder) CostMetric() CostMetric { return d.metric }

// invalidateWorkspaces discards every engine's cached incremental state.
func (d *BeamDecoder) invalidateWorkspaces() {
	if d.engF != nil {
		d.engF.ws.invalidate()
	}
	if d.engI != nil {
		d.engI.ws.invalidate()
	}
}

// NodesExpanded reports the number of tree nodes freshly expanded (one hash
// evaluation plus a full cost computation each) by the most recent Decode
// call; it is the decoder's computational cost in the paper's unit of work.
// Cached nodes whose costs were merely refreshed are counted separately by
// NodesRefreshed.
func (d *BeamDecoder) NodesExpanded() int { return d.nodesExpanded }

// NodesRefreshed reports the number of cached tree nodes whose costs were
// updated in place by the most recent Decode call — no hash replay, only the
// cost terms of observations that arrived since the node's level was last
// folded.
func (d *BeamDecoder) NodesRefreshed() int { return d.nodesRefreshed }

// NodesSaved reports the estimated number of child expansions the most
// recent Decode call avoided through approximate search: each frontier node
// dropped by gap pruning or lookahead narrowing would have spawned a full
// block of children at the next level, and each node pruned by a prefix
// commit would have kept being refreshed on later attempts. Always zero
// under the exact search.
func (d *BeamDecoder) NodesSaved() int { return d.nodesSaved }

// DecodeResult is the outcome of one decode attempt.
type DecodeResult struct {
	// Message is the most likely message found, packed LSB-first.
	Message []byte
	// Cost is the accumulated distance of the returned message's symbols to
	// the observations (squared Euclidean for AWGN, Hamming for BSC; in grid
	// units under the quantized int32 metric).
	Cost float64
	// NodesExpanded is the number of decoding-tree nodes freshly evaluated
	// (hash replay plus full cost) in this attempt.
	NodesExpanded int
	// NodesRefreshed is the number of cached nodes reused from the previous
	// attempt with an in-place cost update.
	NodesRefreshed int
	// NodesSaved is the estimated number of child expansions avoided by
	// approximate search (see BeamDecoder.NodesSaved); zero in exact mode.
	NodesSaved int
}

// Decode runs the beam search against AWGN-channel observations and returns
// the most likely message under the received symbols so far. Repeated calls
// with the same container resume incrementally from the first level whose
// observations changed.
func (d *BeamDecoder) Decode(obs *Observations) (*DecodeResult, error) {
	if obs == nil {
		return nil, fmt.Errorf("core: nil observations")
	}
	if obs.NumSegments() != d.p.NumSegments() {
		return nil, fmt.Errorf("core: observations sized for %d segments, decoder for %d",
			obs.NumSegments(), d.p.NumSegments())
	}
	var out *DecodeResult
	if d.metric == CostInt32 {
		c := &d.qawgnC
		c.d, c.obs, c.tab = d, obs, d.quantTab
		out = d.engI.run(c, obs, obs.Generation(), obs.Epoch(), obs.cleanGen, obs.DirtyLevel())
		c.obs = nil // do not pin the container between decodes
	} else {
		c := &d.awgnC
		c.d, c.obs, c.tab = d, obs, d.dimTab
		out = d.engF.run(c, obs, obs.Generation(), obs.Epoch(), obs.cleanGen, obs.DirtyLevel())
		c.obs = nil
	}
	obs.MarkClean()
	return out, nil
}

// DecodeBits runs the beam search against binary-channel observations using
// the Hamming metric, which is the ML rule for the BSC (§3.2). It is
// incremental in the same way as Decode.
func (d *BeamDecoder) DecodeBits(obs *BitObservations) (*DecodeResult, error) {
	if obs == nil {
		return nil, fmt.Errorf("core: nil observations")
	}
	if obs.NumSegments() != d.p.NumSegments() {
		return nil, fmt.Errorf("core: observations sized for %d segments, decoder for %d",
			obs.NumSegments(), d.p.NumSegments())
	}
	var out *DecodeResult
	if d.metric == CostInt32 {
		c := &d.qbscC
		c.d, c.obs = d, obs
		out = d.engI.run(c, obs, obs.Generation(), obs.Epoch(), obs.cleanGen, obs.DirtyLevel())
		c.obs = nil
	} else {
		c := &d.bscC
		c.d, c.obs = d, obs
		out = d.engF.run(c, obs, obs.Generation(), obs.Epoch(), obs.cleanGen, obs.DirtyLevel())
		c.obs = nil
	}
	obs.MarkClean()
	return out, nil
}

// awgnCoster is the exact float64 squared-Euclidean metric for AWGN
// observations. prepareLevel stages the level's observations as flat
// coordinate/bit-offset arrays so the sharded cost folds run over dense
// float64 slices, and the fold extracts each pass's 2c coded bits from a
// hash word cached in registers, recomputing it only when the word index
// changes (passes read the expansion in ascending order, so that is once per
// 64 bits). When the mapper exposes its per-dimension table the fold reads
// symbol coordinates straight from it — two array loads instead of an
// interface call. All of it is value-preserving: the same hash words, the
// same table float64s, the same add order, so this path computes
// bit-identical costs to the plain symbolFor replay it descends from.
type awgnCoster struct {
	d   *BeamDecoder
	obs *Observations
	tab []float64

	// Per-level scratch staged by prepareLevel: received coordinates and the
	// starting bit offset of each observation's pass in the spine expansion.
	yI     []float64
	yQ     []float64
	starts []uint32
}

func (c *awgnCoster) numObs(level int) int { return len(c.obs.spines[level]) }

// unitCost: path costs are squared Euclidean distances, already in the exact
// metric's natural unit.
func (c *awgnCoster) unitCost() float64 { return 1 }

func (c *awgnCoster) prepareLevel(level int) {
	obs := c.obs.spines[level]
	n := len(obs)
	c.yI = sized(c.yI, n)
	c.yQ = sized(c.yQ, n)
	c.starts = sized(c.starts, n)
	for i := range obs {
		c.yI[i] = real(obs[i].y)
		c.yQ[i] = imag(obs[i].y)
		c.starts[i] = uint32(2 * c.d.p.C * obs[i].pass)
	}
}

// costTail is the scalar fold; the decoder's hot paths go through
// costTailMany, this exists for in-package oracles and tests.
func (c *awgnCoster) costTail(local float64, spine uint64, level, from int) float64 {
	loc := [1]float64{local}
	sp := [1]uint64{spine}
	c.costTailMany(loc[:], sp[:], level, from)
	return loc[0]
}

func (c *awgnCoster) costTailMany(locals []float64, spines []uint64, level, from int) {
	n := len(c.starts)
	if from >= n {
		if from == 0 {
			clear(locals) // an empty full fold still owns the output
		}
		return
	}
	tab := c.tab
	if tab == nil {
		// Custom mapper without a dimension table: replay through the Mapper
		// interface, still with word-level memoization of the expansion.
		width := uint(2 * c.d.p.C)
		var ex hash.Expander
		for j, spine := range spines {
			ex.Reset(c.d.family, spine)
			var local float64
			if from > 0 {
				local = locals[j]
			}
			for i := from; i < n; i++ {
				x := c.d.mapper.Map(uint32(ex.BitRange(uint(c.starts[i]), width)))
				dI := c.yI[i] - real(x)
				dQ := c.yQ[i] - imag(x)
				local += dI*dI + dQ*dQ
			}
			locals[j] = local
		}
		return
	}
	cc := uint(c.d.p.C)
	mask := uint32(1)<<cc - 1
	width := uint32(2 * c.d.p.C)
	wmask := uint32(uint64(1)<<width - 1)
	fam := c.d.family
	starts := c.starts[from:n]
	yI := c.yI[from:n]
	yQ := c.yQ[from:n:n]
	for j, spine := range spines {
		var local float64
		if from > 0 {
			local = locals[j]
		}
		wi := ^uint32(0) // cached word index; all-ones is never valid here
		var w uint64
		for i, start := range starts {
			idx := start >> 6
			off := start & 63
			if idx != wi {
				w = fam.Word(spine, idx)
				wi = idx
			}
			var word uint32
			if off+width <= 64 {
				word = uint32(w>>(64-off-width)) & wmask
			} else {
				// The range straddles into the next word; advance the cache
				// to it, since later passes start there.
				hiBits := 64 - off
				loBits := width - hiBits
				hi := w & (uint64(1)<<hiBits - 1)
				w = fam.Word(spine, idx+1)
				wi = idx + 1
				word = uint32(hi<<loBits | w>>(64-loBits))
			}
			dI := yI[i] - tab[word>>cc&mask]
			dQ := yQ[i] - tab[word&mask]
			local += dI*dI + dQ*dQ
		}
		locals[j] = local
	}
}

// awgnQuantCoster is the quantized int32 metric for AWGN observations:
// observations and symbol coordinates are snapped onto the costQuantScale
// fixed-point grid and per-term squared distances accumulate in the int32
// carrier (saturating — non-negative terms make a single final clamp of the
// int64 running sum exactly equivalent to per-term saturating adds).
//
// The fold is restructured around the integer grid. prepareLevel tabulates,
// per observation and per dimension, the squared distance to every one of
// the 2^c constellation coordinates — the fixed-point analogue of a
// hardware distance LUT — so the per-child term is two table loads and an
// add, with no subtraction or multiplication left in the loop. costTailMany
// then iterates term-outer/child-inner: each observation's hash word index
// is resolved once for the whole batch, and the inner loops are flat passes
// over the batch whose hash computations pipeline across children instead
// of serializing along each child's pass chain.
type awgnQuantCoster struct {
	d   *BeamDecoder
	obs *Observations
	tab []int32

	// Per-level scratch, rebuilt by prepareLevel.
	starts []uint32
	// dI2/dQ2 are the per-observation squared-distance LUTs: row i (2^c
	// entries at offset i*dim) maps a dimension's c-bit value to the squared
	// grid distance from observation i's coordinate. Entries fit uint32:
	// coordinates are clamped to +/-costQuantMax, so a difference is at most
	// 2^17-2 in magnitude and its square below 2^34... per-dimension
	// differences are at most 2*costQuantMax = 2^16-2, squared below 2^32.
	dI2 []uint32
	dQ2 []uint32
	// words/acc are batch scratch for the interchanged fold.
	words []uint64
	acc   []int64
}

func (c *awgnQuantCoster) numObs(level int) int { return len(c.obs.spines[level]) }

// unitCost: quantized squared distances count in grid² steps, so one unit of
// exact squared Euclidean distance is costQuantScale² carrier units.
func (c *awgnQuantCoster) unitCost() float64 { return costQuantScale * costQuantScale }

func (c *awgnQuantCoster) prepareLevel(level int) {
	obs := c.obs.spines[level]
	n := len(obs)
	dim := 1 << uint(c.d.p.C)
	c.starts = sized(c.starts, n)
	c.dI2 = sized(c.dI2, n*dim)
	c.dQ2 = sized(c.dQ2, n*dim)
	tab := c.tab
	for i := range obs {
		c.starts[i] = uint32(2 * c.d.p.C * obs[i].pass)
		qI := quantCoord(real(obs[i].y))
		qQ := quantCoord(imag(obs[i].y))
		rowI := c.dI2[i*dim : (i+1)*dim]
		rowQ := c.dQ2[i*dim : (i+1)*dim]
		for v, t := range tab {
			dI := int64(qI - t)
			rowI[v] = uint32(dI * dI)
			dQ := int64(qQ - t)
			rowQ[v] = uint32(dQ * dQ)
		}
	}
}

// quantFoldChunk bounds the batch slice the interchanged fold processes per
// outer pass, keeping its word/accumulator scratch inside the L1/L2 caches
// even when a refresh folds a whole cached level at once.
const quantFoldChunk = 1024

func (c *awgnQuantCoster) costTailMany(locals []int32, spines []uint64, level, from int) {
	n := len(c.starts)
	if from >= n {
		if from == 0 {
			clear(locals) // an empty full fold still owns the output
		}
		return
	}
	for len(spines) > quantFoldChunk {
		c.costChunk(locals[:quantFoldChunk], spines[:quantFoldChunk], from)
		locals = locals[quantFoldChunk:]
		spines = spines[quantFoldChunk:]
	}
	c.costChunk(locals, spines, from)
}

func (c *awgnQuantCoster) costChunk(locals []int32, spines []uint64, from int) {
	n := len(c.starts)
	cc := uint(c.d.p.C)
	dim := 1 << cc
	mask := uint32(dim - 1)
	width := uint32(2 * c.d.p.C)
	wmask := uint32(uint64(1)<<width - 1)
	fam := c.d.family
	m := len(spines)
	c.words = sized(c.words, m)
	c.acc = sized(c.acc, m)
	words := c.words[:m]
	acc := c.acc[:m:m]
	if from == 0 {
		clear(acc)
	} else {
		for j, l := range locals {
			acc[j] = int64(l)
		}
	}
	curIdx := ^uint32(0)
	for i := from; i < n; i++ {
		start := c.starts[i]
		idx := start >> 6
		off := start & 63
		rowI := c.dI2[i*dim : (i+1)*dim]
		rowQ := c.dQ2[i*dim : (i+1)*dim : (i+1)*dim]
		// Bounds-check-elimination hints: every lookup index is masked to at
		// most mask, and words/acc run in lockstep.
		_, _ = rowI[mask], rowQ[mask]
		if idx != curIdx {
			for j, spine := range spines {
				words[j] = fam.Word(spine, idx)
			}
			curIdx = idx
		}
		if off+width <= 64 {
			shift := 64 - off - width
			aa := acc[:len(words)]
			for j := range words {
				word := uint32(words[j]>>shift) & wmask
				aa[j] += int64(rowI[word>>cc&mask]) + int64(rowQ[word&mask])
			}
		} else {
			// The range straddles into the next word; roll the word buffer
			// forward to it, since later passes start there.
			hiBits := 64 - off
			loBits := width - hiBits
			hmask := uint64(1)<<hiBits - 1
			ww := words[:len(spines)]
			aa := acc[:len(spines)]
			for j, spine := range spines {
				w2 := fam.Word(spine, idx+1)
				word := uint32((ww[j]&hmask)<<loBits | w2>>(64-loBits))
				ww[j] = w2
				aa[j] += int64(rowI[word>>cc&mask]) + int64(rowQ[word&mask])
			}
			curIdx = idx + 1
		}
	}
	final := acc[:len(locals)]
	for j := range locals {
		locals[j] = sat32(final[j])
	}
}

// bscCoster is the exact Hamming metric for binary-channel observations,
// with the same hash-word memoization as the AWGN fold.
type bscCoster struct {
	d   *BeamDecoder
	obs *BitObservations
}

func (c *bscCoster) numObs(level int) int { return len(c.obs.spines[level]) }

// unitCost: Hamming costs count bit flips directly.
func (c *bscCoster) unitCost() float64 { return 1 }

func (c *bscCoster) prepareLevel(level int) {}

func (c *bscCoster) costTailMany(locals []float64, spines []uint64, level, from int) {
	obs := c.obs.spines[level]
	if from >= len(obs) {
		if from == 0 {
			clear(locals) // an empty full fold still owns the output
		}
		return
	}
	fam := c.d.family
	tail := obs[from:]
	for j, spine := range spines {
		var local float64
		if from > 0 {
			local = locals[j]
		}
		wi := ^uint32(0)
		var w uint64
		for i := range tail {
			// One coded bit per pass: bit p is bit p%64 (MSB-first) of word
			// p/64 of the expansion.
			p := uint32(tail[i].pass)
			if idx := p >> 6; idx != wi {
				w = fam.Word(spine, idx)
				wi = idx
			}
			if byte(w>>(63-p&63))&1 != tail[i].bit {
				local++
			}
		}
		locals[j] = local
	}
}

// bscQuantCoster is the int32 Hamming metric. Hamming distances are already
// integers, so this is the exact BSC metric in the integer carrier; it
// exists so the metric knob applies uniformly to both channel kinds.
type bscQuantCoster struct {
	d   *BeamDecoder
	obs *BitObservations
}

func (c *bscQuantCoster) numObs(level int) int { return len(c.obs.spines[level]) }

// unitCost: the int32 Hamming metric counts bit flips directly (no grid).
func (c *bscQuantCoster) unitCost() float64 { return 1 }

func (c *bscQuantCoster) prepareLevel(level int) {}

func (c *bscQuantCoster) costTailMany(locals []int32, spines []uint64, level, from int) {
	obs := c.obs.spines[level]
	if from >= len(obs) {
		if from == 0 {
			clear(locals) // an empty full fold still owns the output
		}
		return
	}
	fam := c.d.family
	tail := obs[from:]
	for j, spine := range spines {
		// Mismatch counts are non-negative, so an int64 count with one final
		// clamp equals per-term saturating adds.
		var acc int64
		if from > 0 {
			acc = int64(locals[j])
		}
		wi := ^uint32(0)
		var w uint64
		for i := range tail {
			p := uint32(tail[i].pass)
			if idx := p >> 6; idx != wi {
				w = fam.Word(spine, idx)
				wi = idx
			}
			if byte(w>>(63-p&63))&1 != tail[i].bit {
				acc++
			}
		}
		locals[j] = sat32(acc)
	}
}
