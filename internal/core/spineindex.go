package core

// spineIndex maps parent spine values to frontier indices on the rebuild
// path. It replaces the previous map[uint64]int32: spine values are already
// avalanche-mixed hash outputs, so their low bits index an open-addressed
// table directly — no re-hashing, no bucket chasing, and reset is O(1) via
// generation stamps instead of clearing (or reallocating) the table. The
// table is sized to stay at most half full, so linear probes terminate
// quickly.
//
// Like the map it replaces, the index is written single-threaded before a
// level expansion and read concurrently (read-only) by the expansion shards.
type spineIndex struct {
	spines []uint64
	idxs   []int32
	stamps []uint32
	gen    uint32
	mask   uint32
}

// reset prepares the index for up to n entries, invalidating any previous
// contents in O(1).
func (x *spineIndex) reset(n int) {
	need := 4
	for need < 2*n {
		need <<= 1
	}
	if len(x.spines) < need {
		x.spines = make([]uint64, need)
		x.idxs = make([]int32, need)
		x.stamps = make([]uint32, need)
		x.gen = 0
	}
	x.mask = uint32(len(x.spines) - 1)
	x.gen++
	if x.gen == 0 {
		// Stamp wraparound: old stamps could alias the new generation, so
		// clear once and restart. Happens every 2^32 resets.
		clear(x.stamps)
		x.gen = 1
	}
}

// put records spine→idx. On duplicate spine values the first entry wins,
// matching the map-based predecessor's insert-if-absent behavior.
func (x *spineIndex) put(spine uint64, idx int32) {
	i := uint32(spine) & x.mask
	for {
		if x.stamps[i] != x.gen {
			x.stamps[i] = x.gen
			x.spines[i] = spine
			x.idxs[i] = idx
			return
		}
		if x.spines[i] == spine {
			return
		}
		i = (i + 1) & x.mask
	}
}

// get looks up the index recorded for a spine value.
func (x *spineIndex) get(spine uint64) (int32, bool) {
	i := uint32(spine) & x.mask
	for {
		if x.stamps[i] != x.gen {
			return 0, false
		}
		if x.spines[i] == spine {
			return x.idxs[i], true
		}
		i = (i + 1) & x.mask
	}
}
