package core

import (
	"testing"
	"testing/quick"

	"spinal/internal/rng"
)

// Property-style tests on invariants of the encoder/decoder pair that must
// hold for arbitrary parameters and messages, not just the Figure 2 setup.

// TestDecoderOutputAlwaysWellFormed checks that whatever observations the
// decoder is given (including nonsense), its output is a syntactically valid
// message: correct byte length and zero padding bits.
func TestDecoderOutputAlwaysWellFormed(t *testing.T) {
	prop := func(seed uint64, kRaw, bitsRaw uint8, obsCount uint8) bool {
		k := int(kRaw%8) + 1
		bits := int(bitsRaw%40) + 1
		p := Params{K: k, C: 6, MessageBits: bits, Seed: seed}
		dec, err := NewBeamDecoder(p, 4)
		if err != nil {
			return false
		}
		obs, err := NewObservations(p.NumSegments())
		if err != nil {
			return false
		}
		src := rng.New(seed ^ 0xabcdef)
		for i := 0; i < int(obsCount%16); i++ {
			pos := SymbolPos{Spine: src.Intn(p.NumSegments()), Pass: src.Intn(4)}
			y := complex(2*src.Float64()-1, 2*src.Float64()-1)
			if obs.Add(pos, y) != nil {
				return false
			}
		}
		out, err := dec.Decode(obs)
		if err != nil {
			return false
		}
		return checkMessage(p, out.Message) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestEncodeDecodeRoundTripAcrossParameters checks the fundamental contract
// (two noiseless passes decode exactly) across a range of K, C and message
// lengths, including lengths that are not multiples of K.
func TestEncodeDecodeRoundTripAcrossParameters(t *testing.T) {
	prop := func(seed uint64, kRaw, cRaw, bitsRaw uint8) bool {
		k := int(kRaw%6) + 2        // 2..7
		c := int(cRaw%9) + 4        // 4..12
		bits := int(bitsRaw%56) + 8 // 8..63
		p := Params{K: k, C: c, MessageBits: bits, Seed: seed | 1}
		msg := RandomMessage(rng.New(seed^0x1234), bits)
		enc, err := NewEncoder(p, msg)
		if err != nil {
			return false
		}
		obs, err := NewObservations(p.NumSegments())
		if err != nil {
			return false
		}
		for pass := 0; pass < 2; pass++ {
			for s := 0; s < p.NumSegments(); s++ {
				if obs.Add(SymbolPos{Spine: s, Pass: pass}, enc.Symbol(s, pass)) != nil {
					return false
				}
			}
		}
		dec, err := NewBeamDecoder(p, 32)
		if err != nil {
			return false
		}
		out, err := dec.Decode(obs)
		if err != nil {
			return false
		}
		return EqualMessages(out.Message, msg, bits)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestSpineDeterministicAcrossEncoderInstances checks that the spine is a
// pure function of (params, message): fresh encoders always agree.
func TestSpineDeterministicAcrossEncoderInstances(t *testing.T) {
	prop := func(seed uint64, bitsRaw uint8) bool {
		bits := int(bitsRaw%64) + 1
		p := Params{K: 4, C: 8, MessageBits: bits, Seed: seed}
		msg := RandomMessage(rng.New(seed^77), bits)
		a, err := NewEncoder(p, msg)
		if err != nil {
			return false
		}
		b, err := NewEncoder(p, msg)
		if err != nil {
			return false
		}
		sa, sb := a.Spine(), b.Spine()
		if len(sa) != len(sb) || len(sa) != p.NumSegments() {
			return false
		}
		for i := range sa {
			if sa[i] != sb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestBitSessionNeverExceedsOneBitPerUse checks an information-theoretic
// sanity bound on the binary-channel session: a successful decode can never
// claim a rate above 1 bit per channel use (plus nothing — the session
// enforces a minimum number of uses).
func TestBitSessionNeverExceedsOneBitPerUse(t *testing.T) {
	prop := func(seed uint64, bitsRaw uint8) bool {
		bits := int(bitsRaw%24) + 8
		p := Params{K: 4, C: 8, MessageBits: bits, Seed: seed | 1}
		msg := RandomMessage(rng.New(seed^31), bits)
		cfg := SessionConfig{Params: p, BeamWidth: 8, Attempts: AttemptEverySymbol{}, MaxSymbols: 50 * p.NumSegments()}
		res, err := RunBitSession(cfg, msg, func(b byte) byte { return b }, GenieVerifier(msg, bits))
		if err != nil {
			return false
		}
		if !res.Success {
			return false
		}
		return res.Rate(bits) <= 1.0+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
