package core

import (
	"fmt"
	"testing"

	"spinal/internal/rng"
)

func TestSpineIndexBasics(t *testing.T) {
	var x spineIndex
	x.reset(4)
	if _, ok := x.get(42); ok {
		t.Fatal("fresh index reports a hit")
	}
	x.put(42, 7)
	x.put(99, 1)
	if idx, ok := x.get(42); !ok || idx != 7 {
		t.Fatalf("get(42) = %d, %v", idx, ok)
	}
	if idx, ok := x.get(99); !ok || idx != 1 {
		t.Fatalf("get(99) = %d, %v", idx, ok)
	}
	// Duplicate puts keep the first entry, matching the insert-if-absent
	// behavior of the map this index replaced.
	x.put(42, 3)
	if idx, _ := x.get(42); idx != 7 {
		t.Fatalf("duplicate put overwrote: get(42) = %d", idx)
	}
	// Reset invalidates in O(1): every previous key must miss.
	x.reset(4)
	if _, ok := x.get(42); ok {
		t.Fatal("reset did not invalidate")
	}
}

func TestSpineIndexCollisions(t *testing.T) {
	// Keys crafted to collide in the low bits force linear probing; the index
	// must still resolve every key exactly.
	var x spineIndex
	const n = 64
	x.reset(n)
	for i := 0; i < n; i++ {
		// Identical low 32 bits across all keys: worst-case probe chains.
		x.put(uint64(i)<<32|0xdeadbeef, int32(i))
	}
	for i := 0; i < n; i++ {
		if idx, ok := x.get(uint64(i)<<32 | 0xdeadbeef); !ok || idx != int32(i) {
			t.Fatalf("colliding key %d: got %d, %v", i, idx, ok)
		}
	}
	if _, ok := x.get(uint64(n)<<32 | 0xdeadbeef); ok {
		t.Fatal("absent colliding key reported present")
	}
}

func TestSpineIndexReuseAcrossGenerations(t *testing.T) {
	var x spineIndex
	src := rng.New(17)
	for gen := 0; gen < 100; gen++ {
		n := 1 + int(src.Uint64()%200)
		x.reset(n)
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = src.Uint64()
			x.put(keys[i], int32(i))
		}
		for i, k := range keys {
			if idx, ok := x.get(k); !ok || idx != int32(i) {
				t.Fatalf("gen %d key %d: got %d, %v", gen, i, idx, ok)
			}
		}
	}
}

// benchSpineKeys returns hash-like keys of the kind the rebuild path indexes:
// avalanche-mixed spine values from the decoder's RNG.
func benchSpineKeys(n int) []uint64 {
	src := rng.New(5)
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = src.Uint64()
	}
	return keys
}

// BenchmarkSpineIndex compares the open-addressed index against the
// map[uint64]int32 it replaced, over the rebuild path's access pattern:
// reset, insert one frontier's spine values, then look up hits and misses.
func BenchmarkSpineIndex(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		keys := benchSpineKeys(2 * n)
		hits, misses := keys[:n], keys[n:]
		b.Run(fmt.Sprintf("open-addr/n=%d", n), func(b *testing.B) {
			var x spineIndex
			b.ReportAllocs()
			for b.Loop() {
				x.reset(n)
				for i, k := range hits {
					x.put(k, int32(i))
				}
				var found int
				for _, k := range hits {
					if _, ok := x.get(k); ok {
						found++
					}
				}
				for _, k := range misses {
					if _, ok := x.get(k); ok {
						found++
					}
				}
				if found != n {
					b.Fatalf("found %d of %d", found, n)
				}
			}
		})
		b.Run(fmt.Sprintf("map/n=%d", n), func(b *testing.B) {
			m := make(map[uint64]int32, n)
			b.ReportAllocs()
			for b.Loop() {
				clear(m)
				for i, k := range hits {
					if _, ok := m[k]; !ok {
						m[k] = int32(i)
					}
				}
				var found int
				for _, k := range hits {
					if _, ok := m[k]; ok {
						found++
					}
				}
				for _, k := range misses {
					if _, ok := m[k]; ok {
						found++
					}
				}
				if found != n {
					b.Fatalf("found %d of %d", found, n)
				}
			}
		})
	}
}
