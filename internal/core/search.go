package core

import (
	"fmt"
	"strconv"
	"strings"
)

// This file is the knob surface of the approximate search modes (engine.go
// holds the mechanics). The modes descend from Perry et al.'s SIGCOMM'12
// follow-up to the HotNets'11 paper: the beam decoder recovers almost all of
// the ML decoder's rate while expanding a fraction of the tree if it (a)
// prunes candidates whose path cost trails the running best by more than a
// gap no plausible true path would show, (b) fully expands only the top-M
// frontier nodes, choosing the M by probing each survivor's children half a
// level ahead, and (c) freezes the spine prefix once every surviving path
// agrees on it for several consecutive levels, shrinking what later
// incremental attempts re-search.

// SearchMode selects the decoder's tree-search strategy.
type SearchMode uint8

const (
	// SearchExact is the full beam search of the HotNets'11 paper —
	// bit-identical to the decoder as it existed before approximate modes,
	// at every worker count and cost metric.
	SearchExact SearchMode = iota
	// SearchGap keeps the full beam but discards surviving candidates whose
	// path cost exceeds the level's best by more than the configured gap,
	// and commits converged prefixes. The mildest approximation: it only
	// drops paths that are already badly losing.
	SearchGap
	// SearchLookahead narrows each observed level's frontier to ExpandTop
	// nodes — half retained by path cost, half ranked by a half-level
	// lookahead probe of each node's cheapest child — and commits
	// converged prefixes.
	SearchLookahead
	// SearchApprox stacks gap pruning, lookahead narrowing and prefix
	// commit — the most aggressive mode.
	SearchApprox
)

// String renders the mode the way the -search CLI flags spell it.
func (m SearchMode) String() string {
	switch m {
	case SearchExact:
		return "exact"
	case SearchGap:
		return "gap"
	case SearchLookahead:
		return "lookahead"
	case SearchApprox:
		return "approx"
	default:
		return fmt.Sprintf("SearchMode(%d)", uint8(m))
	}
}

// SearchConfig configures the approximate search. The zero value is the
// exact search. Fields other than Mode are advisory refinements: zero means
// "use the default for this decoder's beam width" (see normalized).
type SearchConfig struct {
	// Mode selects the strategy; fields below refine non-exact modes.
	Mode SearchMode
	// ExpandTop is M, the number of frontier nodes lookahead narrowing
	// retains per observed level. Zero means max(2, B/2).
	ExpandTop int
	// Lookahead is the number of child segments probed per retained
	// candidate when ranking the frontier (a stride-subsampled slice of the
	// 2^k children). Zero means 2^ceil(k/2) — the "half level" of the
	// SIGCOMM'12 lookahead, resolved at decode time from the code's k.
	Lookahead int
	// CostGap is the pruning gap G: a candidate whose path cost exceeds the
	// level's best by more than the gap is discarded. With PerLevel set
	// (the default), G is in units of the best path's average cost per
	// observation — an implicit noise estimate, so one value is meaningful
	// across SNRs and channels — applied once per observation of the
	// narrowed level. With PerLevel clear, G is an absolute gap in the
	// exact metric's natural cost unit (squared Euclidean distance for
	// AWGN, bit flips for BSC); the quantized metric converts internally.
	// Zero means the default per-level gap.
	CostGap float64
	// PerLevel selects the self-scaling per-observation gap described on
	// CostGap. Set via normalized defaults for non-exact modes; an explicit
	// absolute gap can be requested with PerLevel=false and a non-zero
	// CostGap.
	PerLevel bool
	// CommitLevels is how many consecutive levels the surviving paths must
	// agree on a spine prefix before the prefix is frozen. Zero means 8;
	// negative disables prefix commit.
	CommitLevels int
}

// DefaultCommitLevels is the prefix-commit agreement window used when
// SearchConfig.CommitLevels is zero.
const DefaultCommitLevels = 8

// DefaultCostGap is the per-observation pruning gap used when
// SearchConfig.CostGap is zero, in units of the best path's average
// per-observation cost (see SearchConfig.CostGap). Chosen empirically: at 4
// the gap filter never changed a session outcome across the 10-13 dB
// operating points swept while cutting 20-60% of expansions; at 3 and below
// it begins to cost successes at tight pass budgets.
const DefaultCostGap = 4.0

// DefaultExpandTop returns the lookahead retention M used when
// SearchConfig.ExpandTop is zero, for a beam width b. Half the beam: at B/2
// the narrowing preserved every session outcome in the operating-point
// sweeps (B/4 costs real rate whenever the beam is not overprovisioned),
// while the next level still expands half as many blocks.
func DefaultExpandTop(b int) int {
	m := b / 2
	if m < 2 {
		m = 2
	}
	return m
}

// bubbleParents is W, the number of cheapest parents whose children an
// unobserved level retains under the approximate modes (the "bubble" of
// still-plausible prefixes carried across punctured levels; engine.run
// documents why this cannot cost delivered rate). Tied to ExpandTop so the
// one knob scales both narrowings: a quarter of M, floored at 2 so at least
// two competing prefixes always survive a punctured stretch.
func bubbleParents(expandTop int) int {
	w := expandTop / 4
	if w < 2 {
		w = 2
	}
	return w
}

// normalized validates the config and resolves zero fields to the defaults
// for a beam width b. Exact mode normalizes to the zero struct so configs
// compare cleanly; ParseSearchConfig and SetSearchConfig both go through
// here, so a stored config is always in normal form.
func (c SearchConfig) normalized(b int) (SearchConfig, error) {
	switch c.Mode {
	case SearchExact:
		return SearchConfig{}, nil
	case SearchGap, SearchLookahead, SearchApprox:
	default:
		return c, fmt.Errorf("core: unknown search mode %d", uint8(c.Mode))
	}
	if c.ExpandTop < 0 || c.Lookahead < 0 || c.CostGap < 0 {
		return c, fmt.Errorf("core: negative search parameter in %+v", c)
	}
	if c.ExpandTop == 0 {
		c.ExpandTop = DefaultExpandTop(b)
	}
	if c.ExpandTop > b {
		c.ExpandTop = b
	}
	if c.CostGap == 0 {
		c.CostGap = DefaultCostGap
		c.PerLevel = true
	}
	if c.CommitLevels == 0 {
		c.CommitLevels = DefaultCommitLevels
	}
	if c.CommitLevels < 0 {
		c.CommitLevels = -1 // canonical "disabled"
	}
	// Lookahead == 0 stays 0: the engine resolves it to 2^ceil(k/2) from
	// the code parameters at decode time.
	return c, nil
}

// gapEnabled reports whether cost-gap pruning applies under this config.
func (c SearchConfig) gapEnabled() bool {
	return c.Mode == SearchGap || c.Mode == SearchApprox
}

// lookaheadEnabled reports whether lookahead narrowing applies.
func (c SearchConfig) lookaheadEnabled() bool {
	return c.Mode == SearchLookahead || c.Mode == SearchApprox
}

// commitEnabled reports whether converged prefixes are frozen.
func (c SearchConfig) commitEnabled() bool {
	return c.Mode != SearchExact && c.CommitLevels > 0
}

// String renders the config in the spelling ParseSearchConfig accepts.
func (c SearchConfig) String() string {
	switch c.Mode {
	case SearchExact:
		return "exact"
	case SearchGap:
		if c.CostGap > 0 && !(c.CostGap == DefaultCostGap && c.PerLevel) {
			return fmt.Sprintf("gap:%g", c.CostGap)
		}
		return "gap"
	case SearchLookahead:
		if c.ExpandTop > 0 {
			return fmt.Sprintf("lookahead:%d", c.ExpandTop)
		}
		return "lookahead"
	case SearchApprox:
		return "approx"
	default:
		return c.Mode.String()
	}
}

// ParseSearchConfig resolves a CLI spelling of a search mode:
//
//	""            exact search (the default)
//	"exact"       exact search
//	"gap"         cost-gap pruning at the default per-level gap
//	"gap:G"       cost-gap pruning with per-level gap G (a float)
//	"lookahead"   lookahead narrowing at the default top-M
//	"lookahead:M" lookahead narrowing retaining the top M nodes
//	"approx"      gap pruning + lookahead + prefix commit
//
// The returned config is not yet normalized — zero refinements resolve
// against the decoder's beam width when the config is installed.
func ParseSearchConfig(s string) (SearchConfig, error) {
	base, arg, hasArg := strings.Cut(s, ":")
	var cfg SearchConfig
	switch base {
	case "", "exact":
		if hasArg {
			return cfg, fmt.Errorf("core: search mode %q takes no argument", base)
		}
		return SearchConfig{}, nil
	case "gap":
		cfg.Mode = SearchGap
		if hasArg {
			g, err := strconv.ParseFloat(arg, 64)
			if err != nil || g <= 0 {
				return cfg, fmt.Errorf("core: bad cost gap %q (want a positive float)", arg)
			}
			cfg.CostGap = g
			cfg.PerLevel = true
		}
		return cfg, nil
	case "lookahead":
		cfg.Mode = SearchLookahead
		if hasArg {
			m, err := strconv.Atoi(arg)
			if err != nil || m < 1 {
				return cfg, fmt.Errorf("core: bad lookahead width %q (want a positive integer)", arg)
			}
			cfg.ExpandTop = m
		}
		return cfg, nil
	case "approx":
		if hasArg {
			return cfg, fmt.Errorf("core: search mode %q takes no argument", base)
		}
		return SearchConfig{Mode: SearchApprox}, nil
	default:
		return cfg, fmt.Errorf("core: unknown search mode %q (want exact, gap[:G], lookahead[:M] or approx)", s)
	}
}

// SetSearchConfig installs a search strategy on the decoder. The config is
// normalized against the decoder's beam width (zero refinements become
// defaults); switching strategies invalidates the incremental workspace —
// frontiers pruned under one strategy do not describe another — so the next
// Decode rebuilds from the root. The zero SearchConfig restores the exact
// search, which is bit-identical to a decoder that never had an approximate
// mode installed.
func (d *BeamDecoder) SetSearchConfig(sc SearchConfig) error {
	norm, err := sc.normalized(d.b)
	if err != nil {
		return err
	}
	if norm == d.search {
		return nil
	}
	d.search = norm
	d.invalidateWorkspaces()
	return nil
}

// SearchConfig reports the installed (normalized) search strategy.
func (d *BeamDecoder) SearchConfig() SearchConfig { return d.search }
