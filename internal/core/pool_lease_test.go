package core

import (
	"testing"

	"spinal/internal/rng"
)

// TestLeaseResetReuseAcrossTrials checks the trial-scoped reuse helper: one
// lease Reset between messages must decode exactly like a fresh decoder and
// container per message.
func TestLeaseResetReuseAcrossTrials(t *testing.T) {
	p := poolTestParams(32)
	pool := NewDecoderPool(4)
	lease, err := pool.Lease(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer lease.Release()

	for trial := 0; trial < 5; trial++ {
		msg := RandomMessage(rng.New(uint64(trial+1)*977), p.MessageBits)

		fresh, err := NewBeamDecoder(p, 8)
		if err != nil {
			t.Fatal(err)
		}
		fresh.SetParallelism(1)
		freshObs, err := NewObservations(p.NumSegments())
		if err != nil {
			t.Fatal(err)
		}
		want := decodeThrough(t, fresh, freshObs, p, msg, 3)
		fresh.Close()

		lease.Reset()
		lease.Dec.SetParallelism(1)
		got := decodeThrough(t, lease.Dec, lease.Obs, p, msg, 3)

		if len(got) != len(want) {
			t.Fatalf("trial %d: %d attempts vs %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i].Cost != want[i].Cost ||
				got[i].NodesExpanded != want[i].NodesExpanded ||
				got[i].NodesRefreshed != want[i].NodesRefreshed ||
				!EqualMessages(got[i].Message, want[i].Message, p.MessageBits) {
				t.Fatalf("trial %d attempt %d: reused lease diverged from fresh decoder: %+v vs %+v",
					trial, i, got[i], want[i])
			}
		}
	}
}

// TestLeaseBitsContainer checks the lazily built BSC container: it matches
// the decoder's segment count, survives Reset, and is reusable.
func TestLeaseBitsContainer(t *testing.T) {
	p := poolTestParams(32)
	pool := NewDecoderPool(2)
	lease, err := pool.Lease(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer lease.Release()

	bits, err := lease.Bits()
	if err != nil {
		t.Fatal(err)
	}
	if bits.NumSegments() != p.NumSegments() {
		t.Fatalf("bit container sized for %d segments, want %d", bits.NumSegments(), p.NumSegments())
	}
	if again, _ := lease.Bits(); again != bits {
		t.Fatal("Bits rebuilt the container on a second call")
	}
	if err := bits.Add(SymbolPos{Spine: 0, Pass: 0}, 1); err != nil {
		t.Fatal(err)
	}
	epoch := bits.Epoch()
	lease.Reset()
	if bits.Count() != 0 || bits.Epoch() == epoch {
		t.Fatalf("Reset did not clear the bit container (count=%d epoch %d->%d)",
			bits.Count(), epoch, bits.Epoch())
	}
}

// TestReleaseRestoresDecoderDefaults checks that per-lease tuning does not
// leak through the pool: a lease whose decoder had incremental reuse turned
// off and the candidate cap overridden must come back configured like a
// fresh decoder.
func TestReleaseRestoresDecoderDefaults(t *testing.T) {
	p := poolTestParams(32)
	pool := NewDecoderPool(2)
	lease, err := pool.Lease(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	dec := lease.Dec
	dec.SetIncremental(false)
	if err := dec.SetMaxCandidates(DefaultMaxCandidates(p, 8) * 2); err != nil {
		t.Fatal(err)
	}
	lease.Release()

	again, err := pool.Lease(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer again.Release()
	if again.Dec != dec {
		t.Fatal("expected the cached decoder back")
	}
	if !again.Dec.Incremental() {
		t.Fatal("incremental mode not restored on release")
	}
	if got, want := again.Dec.MaxCandidates(), DefaultMaxCandidates(p, 8); got != want {
		t.Fatalf("max candidates after release = %d, want default %d", got, want)
	}
}

// TestSessionPoolEquivalence checks SessionConfig.Pool end to end: pooled
// AWGN and BSC sessions must produce byte-identical transcripts to unpooled
// ones, and the pool must actually be used (a second trial hits the cache).
func TestSessionPoolEquivalence(t *testing.T) {
	p := poolTestParams(32)
	pool := NewDecoderPool(2)
	for trial := 0; trial < 3; trial++ {
		msg := RandomMessage(rng.New(uint64(trial+1)*131), p.MessageBits)
		cfg := SessionConfig{Params: p, BeamWidth: 8, MaxSymbols: 60 * p.NumSegments(), Parallelism: 1}

		mk := func() func(complex128) complex128 {
			ch := rng.New(uint64(trial+1) * 7919)
			return func(x complex128) complex128 {
				return x + complex(0.3*ch.NormFloat64(), 0.3*ch.NormFloat64())
			}
		}
		want, err := RunSymbolSession(cfg, msg, mk(), GenieVerifier(msg, p.MessageBits))
		if err != nil {
			t.Fatal(err)
		}
		pooled := cfg
		pooled.Pool = pool
		got, err := RunSymbolSession(pooled, msg, mk(), GenieVerifier(msg, p.MessageBits))
		if err != nil {
			t.Fatal(err)
		}
		if got.Success != want.Success || got.ChannelUses != want.ChannelUses ||
			got.Attempts != want.Attempts || got.NodesExpanded != want.NodesExpanded ||
			got.NodesRefreshed != want.NodesRefreshed ||
			!EqualMessages(got.Decoded, want.Decoded, p.MessageBits) {
			t.Fatalf("trial %d: pooled session diverged: %+v vs %+v", trial, got, want)
		}

		mkBits := func() func(byte) byte {
			ch := rng.New(uint64(trial+1) * 104729)
			return func(b byte) byte {
				if ch.Bernoulli(0.03) {
					return b ^ 1
				}
				return b
			}
		}
		bitCfg := cfg
		bitCfg.MaxSymbols = 200 * p.NumSegments()
		wantBits, err := RunBitSession(bitCfg, msg, mkBits(), GenieVerifier(msg, p.MessageBits))
		if err != nil {
			t.Fatal(err)
		}
		bitPooled := bitCfg
		bitPooled.Pool = pool
		gotBits, err := RunBitSession(bitPooled, msg, mkBits(), GenieVerifier(msg, p.MessageBits))
		if err != nil {
			t.Fatal(err)
		}
		if gotBits.Success != wantBits.Success || gotBits.ChannelUses != wantBits.ChannelUses ||
			gotBits.NodesExpanded != wantBits.NodesExpanded ||
			!EqualMessages(gotBits.Decoded, wantBits.Decoded, p.MessageBits) {
			t.Fatalf("trial %d: pooled bit session diverged: %+v vs %+v", trial, gotBits, wantBits)
		}
	}
	if s := pool.Stats(); s.Hits == 0 {
		t.Fatalf("pooled sessions never hit the cache: %+v", s)
	}
}
