package core

import (
	"fmt"
	"sync"
	"testing"

	"spinal/internal/rng"
)

// poolTestParams is a small code so pooled-vs-fresh equivalence runs many
// messages quickly.
func poolTestParams(bits int) Params {
	return Params{K: 4, C: 8, MessageBits: bits, Seed: DefaultSeed}
}

// decodeThrough encodes msg, feeds `passes` noiseless passes to the given
// decoder/observation pair, and returns the decode result of each attempt
// (one attempt per pass, the natural rateless receive loop).
func decodeThrough(t *testing.T, dec *BeamDecoder, obs *Observations, p Params, msg []byte, passes int) []*DecodeResult {
	t.Helper()
	enc, err := NewEncoder(p, msg)
	if err != nil {
		t.Fatal(err)
	}
	var out []*DecodeResult
	for pass := 0; pass < passes; pass++ {
		for s := 0; s < p.NumSegments(); s++ {
			pos := SymbolPos{Spine: s, Pass: pass}
			if err := obs.Add(pos, enc.SymbolAt(pos)); err != nil {
				t.Fatal(err)
			}
		}
		res, err := dec.Decode(obs)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, res)
	}
	return out
}

// TestDecoderPoolLeaseReturn checks the basic lease/return cycle: a released
// decoder is handed out again for the same key, and keys never mix.
func TestDecoderPoolLeaseReturn(t *testing.T) {
	pool := NewDecoderPool(8)
	pA := poolTestParams(32)
	pB := poolTestParams(48)

	la, err := pool.Lease(pA, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s := pool.Stats(); s.Misses != 1 || s.Hits != 0 {
		t.Fatalf("first lease stats = %+v", s)
	}
	deca := la.Dec
	la.Release()
	if s := pool.Stats(); s.Idle != 1 {
		t.Fatalf("idle after release = %d", s.Idle)
	}

	// A different key must not receive the cached decoder.
	lb, err := pool.Lease(pB, 8)
	if err != nil {
		t.Fatal(err)
	}
	if lb.Dec == deca {
		t.Fatal("pool handed a decoder to a different parameter key")
	}
	// The matching key must.
	la2, err := pool.Lease(pA, 8)
	if err != nil {
		t.Fatal(err)
	}
	if la2.Dec != deca {
		t.Fatal("pool did not reuse the idle decoder for the matching key")
	}
	if s := pool.Stats(); s.Hits != 1 || s.Misses != 2 {
		t.Fatalf("stats after reuse = %+v", s)
	}
	// Beam width is part of the key: same params, different B → fresh build.
	lw, err := pool.Lease(pA, 16)
	if err != nil {
		t.Fatal(err)
	}
	if lw.Dec == deca {
		t.Fatal("pool ignored beam width in the key")
	}
	la2.Release()
	la2.Release() // idempotent: double release must not double-cache
	if s := pool.Stats(); s.Idle != 1 {
		t.Fatalf("idle after double release = %d, want 1", s.Idle)
	}
}

// TestDecoderPoolCapacityBound checks that the idle cache never exceeds the
// configured capacity and that overflow releases are discarded, and that a
// zero-capacity pool caches nothing at all.
func TestDecoderPoolCapacityBound(t *testing.T) {
	pool := NewDecoderPool(3)
	p := poolTestParams(32)
	var leases []*LeasedDecoder
	for i := 0; i < 10; i++ {
		l, err := pool.Lease(p, 8)
		if err != nil {
			t.Fatal(err)
		}
		leases = append(leases, l)
	}
	for _, l := range leases {
		l.Release()
	}
	s := pool.Stats()
	if s.Idle != 3 {
		t.Fatalf("idle = %d, want capacity 3", s.Idle)
	}
	if s.Discards != 7 {
		t.Fatalf("discards = %d, want 7", s.Discards)
	}

	off := NewDecoderPool(0)
	l, err := off.Lease(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	l.Release()
	if s := off.Stats(); s.Idle != 0 || s.Discards != 1 {
		t.Fatalf("disabled pool stats = %+v", s)
	}

	pool.Drain()
	if s := pool.Stats(); s.Idle != 0 {
		t.Fatalf("idle after drain = %d", s.Idle)
	}
}

// TestDecoderPoolContention hammers one small pool from many goroutines with
// interleaved lease/decode/release cycles and checks (under -race) that the
// pool stays consistent and every goroutine decodes its own message
// correctly — leases must never alias while checked out.
func TestDecoderPoolContention(t *testing.T) {
	pool := NewDecoderPool(4)
	p := poolTestParams(32)
	const goroutines = 8
	const rounds = 6
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				msg := RandomMessage(rng.New(uint64(1000*g+round+1)), p.MessageBits)
				l, err := pool.Lease(p, 8)
				if err != nil {
					errs <- err
					return
				}
				enc, err := NewEncoder(p, msg)
				if err != nil {
					errs <- err
					return
				}
				for pass := 0; pass < 2; pass++ {
					for s := 0; s < p.NumSegments(); s++ {
						pos := SymbolPos{Spine: s, Pass: pass}
						if err := l.Obs.Add(pos, enc.SymbolAt(pos)); err != nil {
							errs <- err
							return
						}
					}
				}
				res, err := l.Dec.Decode(l.Obs)
				if err != nil {
					errs <- err
					return
				}
				if !EqualMessages(res.Message, msg, p.MessageBits) {
					errs <- fmt.Errorf("goroutine %d round %d: wrong decode through pooled decoder", g, round)
					return
				}
				l.Release()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	s := pool.Stats()
	if s.Idle > 4 {
		t.Fatalf("idle %d exceeds capacity 4", s.Idle)
	}
	if s.Hits+s.Misses != goroutines*rounds {
		t.Fatalf("hits+misses = %d, want %d", s.Hits+s.Misses, goroutines*rounds)
	}
}

// TestDecoderPoolEquivalence runs a sequence of messages through one reused
// pooled decoder and through fresh decoders, attempt by attempt, and demands
// bit-identical messages, costs and node accounting — the pooled path must
// be indistinguishable from the fresh path.
func TestDecoderPoolEquivalence(t *testing.T) {
	p := poolTestParams(40)
	pool := NewDecoderPool(1)
	const passes = 3
	for trial := 0; trial < 5; trial++ {
		msg := RandomMessage(rng.New(uint64(77+trial)), p.MessageBits)

		l, err := pool.Lease(p, 8)
		if err != nil {
			t.Fatal(err)
		}
		pooled := decodeThrough(t, l.Dec, l.Obs, p, msg, passes)

		fdec, err := NewBeamDecoder(p, 8)
		if err != nil {
			t.Fatal(err)
		}
		fobs, err := NewObservations(p.NumSegments())
		if err != nil {
			t.Fatal(err)
		}
		fresh := decodeThrough(t, fdec, fobs, p, msg, passes)

		for i := range fresh {
			pr, fr := pooled[i], fresh[i]
			if !EqualMessages(pr.Message, fr.Message, p.MessageBits) {
				t.Fatalf("trial %d attempt %d: pooled message differs from fresh", trial, i)
			}
			if pr.Cost != fr.Cost {
				t.Fatalf("trial %d attempt %d: pooled cost %v != fresh cost %v", trial, i, pr.Cost, fr.Cost)
			}
			if pr.NodesExpanded != fr.NodesExpanded || pr.NodesRefreshed != fr.NodesRefreshed {
				t.Fatalf("trial %d attempt %d: node accounting differs (pooled %d/%d, fresh %d/%d)",
					trial, i, pr.NodesExpanded, pr.NodesRefreshed, fr.NodesExpanded, fr.NodesRefreshed)
			}
		}
		// Return so the next trial reuses the same decoder — from trial 1 on,
		// every lease is a pool hit exercising the reset-on-release path.
		l.Release()
	}
	s := pool.Stats()
	if s.Hits != 4 || s.Misses != 1 {
		t.Fatalf("equivalence trials should reuse one decoder: %+v", s)
	}
}
