package core

import (
	"testing"

	"spinal/internal/channel"
	"spinal/internal/rng"
)

func noiselessSymbolChannel(x complex128) complex128 { return x }

func noiselessBitChannel(b byte) byte { return b }

func TestSessionNoiselessAchievesMaxRate(t *testing.T) {
	// With no noise and per-symbol decode attempts, the sequential schedule
	// decodes as soon as the first pass completes: exactly n/k symbols, i.e.
	// the unpunctured maximum rate of k bits/symbol.
	p := DefaultParams()
	msg := testMessage(61, p.MessageBits)
	cfg := SessionConfig{Params: p, BeamWidth: 16, Attempts: AttemptEverySymbol{}}
	res, err := RunSymbolSession(cfg, msg, noiselessSymbolChannel, GenieVerifier(msg, p.MessageBits))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatal("noiseless session failed")
	}
	if res.ChannelUses != p.NumSegments() {
		t.Fatalf("noiseless session used %d symbols, want %d", res.ChannelUses, p.NumSegments())
	}
	if got := res.Rate(p.MessageBits); got != float64(p.K) {
		t.Fatalf("noiseless rate = %v, want %v", got, float64(p.K))
	}
	if !EqualMessages(res.Decoded, msg, p.MessageBits) {
		t.Fatal("decoded message mismatch")
	}
}

func TestSessionHighSNRRate(t *testing.T) {
	// At 25 dB (capacity ~8.3 bits/symbol) the k=8 code with the punctured
	// schedule and per-symbol decode attempts should sustain a rate of at
	// least 6 bits/symbol over a handful of messages.
	p := DefaultParams()
	src := rng.New(62)
	msgSrc := rng.New(63)
	ch, _ := channel.NewAWGNdB(25, src)
	sched, _ := NewStripedSchedule(p.NumSegments(), 8)
	var bits, uses int
	for i := 0; i < 10; i++ {
		msg := RandomMessage(msgSrc, p.MessageBits)
		cfg := SessionConfig{Params: p, BeamWidth: 16, Schedule: sched, Attempts: AttemptEverySymbol{}}
		res, err := RunSymbolSession(cfg, msg, ch.Corrupt, GenieVerifier(msg, p.MessageBits))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Success {
			t.Fatalf("message %d failed at 25 dB", i)
		}
		bits += p.MessageBits
		uses += res.ChannelUses
	}
	rate := float64(bits) / float64(uses)
	if rate < 6 {
		t.Fatalf("rate at 25 dB = %v, want >= 6", rate)
	}
}

func TestSessionLowSNRStillDecodes(t *testing.T) {
	// At 0 dB (capacity 1 bit/symbol) the rateless loop needs many passes but
	// must still deliver every message, at a rate clearly below capacity but
	// well above zero.
	p := DefaultParams()
	src := rng.New(64)
	msgSrc := rng.New(65)
	ch, _ := channel.NewAWGNdB(0, src)
	var bits, uses int
	for i := 0; i < 5; i++ {
		msg := RandomMessage(msgSrc, p.MessageBits)
		cfg := SessionConfig{Params: p, BeamWidth: 16}
		res, err := RunSymbolSession(cfg, msg, ch.Corrupt, GenieVerifier(msg, p.MessageBits))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Success {
			t.Fatalf("message %d failed at 0 dB", i)
		}
		bits += p.MessageBits
		uses += res.ChannelUses
	}
	rate := float64(bits) / float64(uses)
	if rate <= 0.3 || rate > 1.0 {
		t.Fatalf("rate at 0 dB = %v, want within (0.3, 1.0]", rate)
	}
}

func TestSessionGiveUpOnHopelessChannel(t *testing.T) {
	// A BSC with crossover 0.5 has zero capacity; the session must hit the
	// give-up bound and report failure.
	p := Params{K: 4, C: 10, MessageBits: 12, Seed: 66}
	msg := testMessage(67, p.MessageBits)
	src := rng.New(68)
	bsc, _ := channel.NewBSC(0.5, src)
	cfg := SessionConfig{Params: p, BeamWidth: 4, MaxSymbols: 60}
	res, err := RunBitSession(cfg, msg, bsc.CorruptBit, GenieVerifier(msg, p.MessageBits))
	if err != nil {
		t.Fatal(err)
	}
	if res.Success {
		t.Fatal("session claimed success over a zero-capacity channel")
	}
	if res.ChannelUses != 60 {
		t.Fatalf("ChannelUses = %d, want the give-up bound 60", res.ChannelUses)
	}
	if res.Rate(p.MessageBits) != 0 {
		t.Fatal("failed session should report zero rate")
	}
}

func TestSessionBitChannelNoiseless(t *testing.T) {
	p := Params{K: 4, C: 10, MessageBits: 24, Seed: 69}
	msg := testMessage(70, p.MessageBits)
	cfg := SessionConfig{Params: p, BeamWidth: 16, Attempts: AttemptEverySymbol{}}
	res, err := RunBitSession(cfg, msg, noiselessBitChannel, GenieVerifier(msg, p.MessageBits))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatal("noiseless bit session failed")
	}
	// Rate over a noiseless binary channel cannot meaningfully exceed
	// 1 bit per coded bit plus the k-bit slack of the final decode attempt.
	if res.ChannelUses < p.MessageBits-p.K {
		t.Fatalf("decoded from only %d coded bits; information-theoretically suspicious", res.ChannelUses)
	}
	if res.ChannelUses > 4*p.MessageBits {
		t.Fatalf("noiseless bit session needed %d coded bits", res.ChannelUses)
	}
}

func TestSessionBitChannelBSC(t *testing.T) {
	p := Params{K: 4, C: 10, MessageBits: 16, Seed: 71}
	src := rng.New(72)
	msgSrc := rng.New(73)
	bsc, _ := channel.NewBSC(0.1, src)
	for i := 0; i < 5; i++ {
		msg := RandomMessage(msgSrc, p.MessageBits)
		cfg := SessionConfig{Params: p, BeamWidth: 16}
		res, err := RunBitSession(cfg, msg, bsc.CorruptBit, GenieVerifier(msg, p.MessageBits))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Success {
			t.Fatalf("message %d failed over BSC(0.1)", i)
		}
		if !EqualMessages(res.Decoded, msg, p.MessageBits) {
			t.Fatalf("message %d decoded incorrectly", i)
		}
	}
}

func TestSessionPuncturedScheduleBeatsMaxRateAtHighSNR(t *testing.T) {
	// At 35 dB the capacity (~11.6 bits/symbol) exceeds k=8, so the punctured
	// schedule plus per-symbol decode attempts should deliver some messages
	// in fewer than n/k symbols, pushing the aggregate rate above k. This is
	// the §3.1 puncturing claim.
	p := DefaultParams()
	src := rng.New(74)
	msgSrc := rng.New(75)
	ch, _ := channel.NewAWGNdB(35, src)
	sched, err := NewStripedSchedule(p.NumSegments(), 8)
	if err != nil {
		t.Fatal(err)
	}
	var bits, uses int
	for i := 0; i < 30; i++ {
		msg := RandomMessage(msgSrc, p.MessageBits)
		cfg := SessionConfig{
			Params:        p,
			BeamWidth:     16,
			Schedule:      sched,
			Attempts:      AttemptEverySymbol{},
			MaxCandidates: 4096,
		}
		res, err := RunSymbolSession(cfg, msg, ch.Corrupt, GenieVerifier(msg, p.MessageBits))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Success {
			t.Fatalf("message %d failed at 35 dB", i)
		}
		bits += p.MessageBits
		uses += res.ChannelUses
	}
	rate := float64(bits) / float64(uses)
	if rate <= float64(p.K) {
		t.Fatalf("punctured rate at 35 dB = %v, want > %d", rate, p.K)
	}
}

func TestAttemptPolicies(t *testing.T) {
	if !(AttemptEverySymbol{}).ShouldAttempt(1, 3) {
		t.Error("every-symbol policy skipped an attempt")
	}
	ep := AttemptEveryPass{}
	if ep.ShouldAttempt(2, 3) || !ep.ShouldAttempt(3, 3) || !ep.ShouldAttempt(6, 3) {
		t.Error("every-pass policy misfires")
	}
	ad := AttemptAdaptive{FinePasses: 2}
	if !ad.ShouldAttempt(1, 3) || !ad.ShouldAttempt(5, 3) {
		t.Error("adaptive policy should be fine-grained early")
	}
	if ad.ShouldAttempt(7, 3) || !ad.ShouldAttempt(9, 3) {
		t.Error("adaptive policy should be per-pass after the fine phase")
	}
	def := AttemptAdaptive{}
	if !def.ShouldAttempt(3*DefaultFinePasses, 3) ||
		def.ShouldAttempt(3*DefaultFinePasses+1, 3) ||
		!def.ShouldAttempt(3*(DefaultFinePasses+1), 3) {
		t.Error("default adaptive policy fine window misplaced")
	}
	bo := AttemptBackoff{DensePasses: 4}
	if !bo.ShouldAttempt(3*4, 3) || bo.ShouldAttempt(3*5, 3) || !bo.ShouldAttempt(3*6, 3) {
		t.Error("backoff policy misfires in the dense-to-sparse transition")
	}
	if bo.ShouldAttempt(3*17, 3) || !bo.ShouldAttempt(3*24, 3) {
		t.Error("backoff policy misfires in the sparse phase")
	}
	if bo.ShouldAttempt(7, 3) {
		t.Error("backoff policy should only attempt at pass boundaries")
	}
	for _, pol := range []AttemptPolicy{AttemptEverySymbol{}, AttemptEveryPass{}, AttemptAdaptive{}, AttemptBackoff{}} {
		if pol.Name() == "" {
			t.Error("empty policy name")
		}
	}
}

func TestSessionEveryPassPolicyAlignsAttempts(t *testing.T) {
	p := DefaultParams()
	msg := testMessage(76, p.MessageBits)
	src := rng.New(77)
	ch, _ := channel.NewAWGNdB(12, src)
	cfg := SessionConfig{Params: p, BeamWidth: 16, Attempts: AttemptEveryPass{}}
	res, err := RunSymbolSession(cfg, msg, ch.Corrupt, GenieVerifier(msg, p.MessageBits))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatal("session failed at 12 dB")
	}
	if res.ChannelUses%p.NumSegments() != 0 {
		t.Fatalf("every-pass policy stopped mid-pass at %d symbols", res.ChannelUses)
	}
}

func TestSessionConfigValidation(t *testing.T) {
	p := DefaultParams()
	msg := testMessage(78, p.MessageBits)
	if _, err := RunSymbolSession(SessionConfig{Params: p}, msg, nil, GenieVerifier(msg, p.MessageBits)); err == nil {
		t.Error("nil channel accepted")
	}
	if _, err := RunSymbolSession(SessionConfig{Params: p}, msg, noiselessSymbolChannel, nil); err == nil {
		t.Error("nil verifier accepted")
	}
	bad := p
	bad.K = 0
	if _, err := RunSymbolSession(SessionConfig{Params: bad}, msg, noiselessSymbolChannel, GenieVerifier(msg, p.MessageBits)); err == nil {
		t.Error("invalid params accepted")
	}
	if _, err := RunBitSession(SessionConfig{Params: p}, msg, nil, GenieVerifier(msg, p.MessageBits)); err == nil {
		t.Error("nil bit channel accepted")
	}
	if _, err := RunSymbolSession(SessionConfig{Params: p}, []byte{1}, noiselessSymbolChannel, GenieVerifier(msg, p.MessageBits)); err == nil {
		t.Error("wrong-size message accepted")
	}
}

func TestGenieVerifierCopiesTruth(t *testing.T) {
	msg := []byte{0xab, 0xcd, 0x01}
	v := GenieVerifier(msg, 24)
	msg[0] = 0 // later mutation must not affect the verifier
	if !v([]byte{0xab, 0xcd, 0x01}) {
		t.Fatal("verifier rejected the original truth")
	}
	if v([]byte{0x00, 0xcd, 0x01}) {
		t.Fatal("verifier accepted a different message")
	}
}
