package core

import "fmt"

// This file implements the fixed-rate instantiation of spinal codes mentioned
// in §3 of the paper ("It is straightforward to adapt the code to run at
// various fixed rates"): the encoder emits exactly L passes of symbols and
// the decoder makes a single attempt from that fixed block. Fixed-rate
// operation is what a spinal code would look like dropped into a conventional
// PHY that cannot carry feedback; it also provides the apples-to-apples
// object to compare against rated block codes at the same rate.

// FixedRateCode is a spinal code operated at a fixed number of passes.
type FixedRateCode struct {
	params Params
	passes int
	beam   int
}

// NewFixedRate returns a spinal code that always transmits exactly `passes`
// passes (so its rate is MessageBits / (passes * NumSegments) bits per
// symbol) and decodes with beam width B.
func NewFixedRate(p Params, passes, beamWidth int) (*FixedRateCode, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if passes < 1 {
		return nil, fmt.Errorf("core: fixed-rate code needs at least one pass, got %d", passes)
	}
	if beamWidth < 1 {
		return nil, fmt.Errorf("core: beam width must be >= 1, got %d", beamWidth)
	}
	return &FixedRateCode{params: p, passes: passes, beam: beamWidth}, nil
}

// Params returns the underlying code parameters.
func (f *FixedRateCode) Params() Params { return f.params }

// Passes returns the fixed number of encoding passes.
func (f *FixedRateCode) Passes() int { return f.passes }

// BlockSymbols returns the number of symbols per coded block.
func (f *FixedRateCode) BlockSymbols() int {
	return f.passes * f.params.NumSegments()
}

// Rate returns the code rate in message bits per symbol.
func (f *FixedRateCode) Rate() float64 {
	return float64(f.params.MessageBits) / float64(f.BlockSymbols())
}

// Encode produces the full fixed-rate block of symbols for a message, in
// pass-major order (all symbols of pass 0, then pass 1, ...).
func (f *FixedRateCode) Encode(message []byte) ([]complex128, error) {
	enc, err := NewEncoder(f.params, message)
	if err != nil {
		return nil, err
	}
	out := make([]complex128, 0, f.BlockSymbols())
	for pass := 0; pass < f.passes; pass++ {
		out = append(out, enc.Pass(pass)...)
	}
	return out, nil
}

// Decode runs one beam-decode over a received fixed-rate block (same order as
// Encode) and returns the most likely message.
func (f *FixedRateCode) Decode(received []complex128) ([]byte, error) {
	dec, err := NewBeamDecoder(f.params, f.beam)
	if err != nil {
		return nil, err
	}
	defer dec.Close()
	obs, err := NewObservations(f.params.NumSegments())
	if err != nil {
		return nil, err
	}
	return f.DecodeWith(dec, obs, received)
}

// DecodeWith is Decode on a caller-supplied decoder/observation pair — e.g.
// a DecoderPool lease reused across trials — which must be empty (a pooled
// lease after Reset qualifies). Pooled and fresh pairs decode
// bit-identically, so the choice only affects allocations.
func (f *FixedRateCode) DecodeWith(dec *BeamDecoder, obs *Observations, received []complex128) ([]byte, error) {
	if len(received) != f.BlockSymbols() {
		return nil, fmt.Errorf("core: fixed-rate block has %d symbols, want %d",
			len(received), f.BlockSymbols())
	}
	nseg := f.params.NumSegments()
	for i, y := range received {
		pos := SymbolPos{Spine: i % nseg, Pass: i / nseg}
		if err := obs.Add(pos, y); err != nil {
			return nil, err
		}
	}
	out, err := dec.Decode(obs)
	if err != nil {
		return nil, err
	}
	return out.Message, nil
}
