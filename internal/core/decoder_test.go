package core

import (
	"sort"
	"testing"

	"spinal/internal/channel"
	"spinal/internal/rng"
)

// observeNoiseless feeds the first `passes` full passes of the encoder output
// into a fresh observation container with no channel noise.
func observeNoiseless(t *testing.T, e *Encoder, passes int) *Observations {
	t.Helper()
	obs, err := NewObservations(e.NumSegments())
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < passes; pass++ {
		for s := 0; s < e.NumSegments(); s++ {
			if err := obs.Add(SymbolPos{Spine: s, Pass: pass}, e.Symbol(s, pass)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return obs
}

func TestObservationsAccounting(t *testing.T) {
	obs, err := NewObservations(4)
	if err != nil {
		t.Fatal(err)
	}
	if obs.Count() != 0 || obs.NumSegments() != 4 {
		t.Fatal("fresh observations not empty")
	}
	if err := obs.Add(SymbolPos{Spine: 2, Pass: 0}, 1+2i); err != nil {
		t.Fatal(err)
	}
	if err := obs.Add(SymbolPos{Spine: 2, Pass: 1}, 3i); err != nil {
		t.Fatal(err)
	}
	if obs.Count() != 2 || obs.PerSpine(2) != 2 || obs.PerSpine(0) != 0 {
		t.Fatal("observation counts wrong")
	}
	if obs.PerSpine(-1) != 0 || obs.PerSpine(9) != 0 {
		t.Fatal("out-of-range PerSpine should be 0")
	}
	if err := obs.Add(SymbolPos{Spine: 4, Pass: 0}, 0); err == nil {
		t.Fatal("out-of-range spine accepted")
	}
	if err := obs.Add(SymbolPos{Spine: 0, Pass: -1}, 0); err == nil {
		t.Fatal("negative pass accepted")
	}
	obs.Reset()
	if obs.Count() != 0 || obs.PerSpine(2) != 0 {
		t.Fatal("Reset did not clear observations")
	}
	if _, err := NewObservations(0); err == nil {
		t.Fatal("zero segments accepted")
	}
}

func TestBitObservationsAccounting(t *testing.T) {
	obs, err := NewBitObservations(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.Add(SymbolPos{Spine: 1, Pass: 0}, 1); err != nil {
		t.Fatal(err)
	}
	if err := obs.Add(SymbolPos{Spine: 1, Pass: 1}, 0); err != nil {
		t.Fatal(err)
	}
	if obs.Count() != 2 || obs.PerSpine(1) != 2 || obs.NumSegments() != 3 {
		t.Fatal("bit observation counts wrong")
	}
	if err := obs.Add(SymbolPos{Spine: 0, Pass: 0}, 2); err == nil {
		t.Fatal("non-bit value accepted")
	}
	if err := obs.Add(SymbolPos{Spine: 5, Pass: 0}, 1); err == nil {
		t.Fatal("out-of-range spine accepted")
	}
	obs.Reset()
	if obs.Count() != 0 {
		t.Fatal("Reset did not clear bit observations")
	}
	if _, err := NewBitObservations(0); err == nil {
		t.Fatal("zero segments accepted")
	}
}

func TestBeamDecoderNoiselessRoundTrip(t *testing.T) {
	p := DefaultParams()
	msg := testMessage(11, p.MessageBits)
	e, err := NewEncoder(p, msg)
	if err != nil {
		t.Fatal(err)
	}
	obs := observeNoiseless(t, e, 2)
	dec, err := NewBeamDecoder(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	out, err := dec.Decode(obs)
	if err != nil {
		t.Fatal(err)
	}
	if !EqualMessages(out.Message, msg, p.MessageBits) {
		t.Fatalf("noiseless decode failed: got %x want %x", out.Message, msg)
	}
	if out.Cost > 1e-18 {
		t.Fatalf("noiseless decode has non-zero cost %v", out.Cost)
	}
	if out.NodesExpanded <= 0 {
		t.Fatal("NodesExpanded not reported")
	}
}

func TestBeamDecoderManyMessagesNoiseless(t *testing.T) {
	// A batch of random messages decoded from two noiseless passes must all
	// come back exactly; B=16 leaves ample headroom against symbol collisions.
	p := Params{K: 6, C: 8, MessageBits: 30, Seed: 99}
	dec, err := NewBeamDecoder(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(123)
	for i := 0; i < 30; i++ {
		msg := RandomMessage(src, p.MessageBits)
		e, err := NewEncoder(p, msg)
		if err != nil {
			t.Fatal(err)
		}
		out, err := dec.Decode(observeNoiseless(t, e, 2))
		if err != nil {
			t.Fatal(err)
		}
		if !EqualMessages(out.Message, msg, p.MessageBits) {
			t.Fatalf("message %d decoded incorrectly", i)
		}
	}
}

func TestBeamDecoderNonMultipleMessageLength(t *testing.T) {
	// Message length not divisible by K exercises the short final segment.
	p := Params{K: 8, C: 10, MessageBits: 21, Seed: 5}
	msg := testMessage(12, p.MessageBits)
	e, err := NewEncoder(p, msg)
	if err != nil {
		t.Fatal(err)
	}
	dec, _ := NewBeamDecoder(p, 16)
	out, err := dec.Decode(observeNoiseless(t, e, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !EqualMessages(out.Message, msg, p.MessageBits) {
		t.Fatalf("decode failed for non-multiple message length")
	}
}

func TestBeamDecoderWithAWGN(t *testing.T) {
	// At 15 dB with 3 passes (rate 8/3 vs capacity ~5) nearly every message
	// decodes. The occasional residual error lives in the final segment — the
	// finite-blocklength tail effect §4 of the paper describes — and is what
	// the rateless loop absorbs by sending more symbols, so we require at
	// least 18 of 20 fixed-seed messages to decode exactly.
	p := DefaultParams()
	src := rng.New(7)
	ch, err := channel.NewAWGNdB(15, src)
	if err != nil {
		t.Fatal(err)
	}
	dec, _ := NewBeamDecoder(p, 16)
	msgSrc := rng.New(8)
	correct := 0
	for i := 0; i < 20; i++ {
		msg := RandomMessage(msgSrc, p.MessageBits)
		e, _ := NewEncoder(p, msg)
		obs, _ := NewObservations(e.NumSegments())
		for pass := 0; pass < 3; pass++ {
			for s := 0; s < e.NumSegments(); s++ {
				obs.Add(SymbolPos{Spine: s, Pass: pass}, ch.Corrupt(e.Symbol(s, pass)))
			}
		}
		out, err := dec.Decode(obs)
		if err != nil {
			t.Fatal(err)
		}
		if EqualMessages(out.Message, msg, p.MessageBits) {
			correct++
		}
	}
	if correct < 18 {
		t.Fatalf("only %d/20 messages decoded at 15 dB with 3 passes", correct)
	}
}

func TestMLDecoderMatchesExhaustiveOptimum(t *testing.T) {
	// For a small code the ML decoder must return a message whose cost is no
	// larger than the cost of the true message and of any beam decode.
	p := Params{K: 4, C: 6, MessageBits: 12, Seed: 3}
	msg := testMessage(13, p.MessageBits)
	e, _ := NewEncoder(p, msg)
	src := rng.New(14)
	ch, _ := channel.NewAWGNdB(5, src) // noisy enough that errors are plausible
	obs, _ := NewObservations(e.NumSegments())
	for s := 0; s < e.NumSegments(); s++ {
		obs.Add(SymbolPos{Spine: s, Pass: 0}, ch.Corrupt(e.Symbol(s, 0)))
	}

	ml, err := NewMLDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	mlOut, err := ml.Decode(obs)
	if err != nil {
		t.Fatal(err)
	}

	// Exhaustive search over all 2^12 messages as an independent oracle.
	bestCost := -1.0
	var bestMsg []byte
	coster := &awgnCoster{d: ml, obs: obs}
	for m := 0; m < 1<<12; m++ {
		cand := []byte{byte(m), byte(m >> 8)}
		cand[1] &= 0x0f
		enc, _ := NewEncoder(p, cand)
		var cost float64
		for s, sv := range enc.Spine() {
			coster.prepareLevel(s)
			cost += coster.costTail(0, sv, s, 0)
		}
		if bestCost < 0 || cost < bestCost {
			bestCost = cost
			bestMsg = cand
		}
	}
	if mlOut.Cost > bestCost+1e-9 {
		t.Fatalf("ML decoder cost %v exceeds exhaustive optimum %v", mlOut.Cost, bestCost)
	}
	if !EqualMessages(mlOut.Message, bestMsg, p.MessageBits) && mlOut.Cost > bestCost+1e-9 {
		t.Fatalf("ML decoder did not return an optimal message")
	}

	// A narrow beam can do no better than ML.
	beam, _ := NewBeamDecoder(p, 2)
	beamOut, _ := beam.Decode(obs)
	if beamOut.Cost < mlOut.Cost-1e-9 {
		t.Fatalf("beam decoder cost %v beats ML cost %v", beamOut.Cost, mlOut.Cost)
	}
}

func TestBeamDecoderPuncturedLevel(t *testing.T) {
	// No observations at all for spine value 0: the decoder must expand that
	// level without pruning and still recover the message from the remaining
	// levels' observations (3 noiseless passes).
	p := Params{K: 4, C: 8, MessageBits: 12, Seed: 21}
	msg := testMessage(22, p.MessageBits)
	e, _ := NewEncoder(p, msg)
	obs, _ := NewObservations(e.NumSegments())
	for pass := 0; pass < 3; pass++ {
		for s := 1; s < e.NumSegments(); s++ { // skip spine value 0 entirely
			obs.Add(SymbolPos{Spine: s, Pass: pass}, e.Symbol(s, pass))
		}
	}
	dec, _ := NewBeamDecoder(p, 16)
	out, err := dec.Decode(obs)
	if err != nil {
		t.Fatal(err)
	}
	if !EqualMessages(out.Message, msg, p.MessageBits) {
		t.Fatal("decode failed with a fully punctured first spine value")
	}
}

func TestBeamDecoderScaleDown(t *testing.T) {
	// Graceful scale-down (§3.2): at a fixed noise level and number of
	// passes, a wider beam should decode at least as many messages correctly
	// as a very narrow beam, and B=64 should be essentially perfect where
	// B=1 is noticeably lossy.
	p := DefaultParams()
	const trials = 40
	successes := func(beam int) int {
		src := rng.New(31)
		msgSrc := rng.New(32)
		ch, _ := channel.NewAWGNdB(10, src)
		dec, _ := NewBeamDecoder(p, beam)
		ok := 0
		for i := 0; i < trials; i++ {
			msg := RandomMessage(msgSrc, p.MessageBits)
			e, _ := NewEncoder(p, msg)
			obs, _ := NewObservations(e.NumSegments())
			for pass := 0; pass < 3; pass++ {
				for s := 0; s < e.NumSegments(); s++ {
					obs.Add(SymbolPos{Spine: s, Pass: pass}, ch.Corrupt(e.Symbol(s, pass)))
				}
			}
			out, err := dec.Decode(obs)
			if err != nil {
				t.Fatal(err)
			}
			if EqualMessages(out.Message, msg, p.MessageBits) {
				ok++
			}
		}
		return ok
	}
	narrow := successes(1)
	wide := successes(64)
	if wide < narrow {
		t.Fatalf("wider beam decoded fewer messages: B=1 %d vs B=64 %d", narrow, wide)
	}
	if wide < trials*3/4 {
		t.Fatalf("B=64 decoded only %d/%d at 10 dB with 3 passes", wide, trials)
	}
}

func TestBeamDecoderBSCNoiseless(t *testing.T) {
	p := Params{K: 4, C: 10, MessageBits: 16, Seed: 41}
	msg := testMessage(42, p.MessageBits)
	e, _ := NewEncoder(p, msg)
	obs, _ := NewBitObservations(e.NumSegments())
	// 12 noiseless passes = 12 coded bits per 4-bit segment.
	for pass := 0; pass < 12; pass++ {
		for s := 0; s < e.NumSegments(); s++ {
			obs.Add(SymbolPos{Spine: s, Pass: pass}, e.CodedBit(s, pass))
		}
	}
	dec, _ := NewBeamDecoder(p, 16)
	out, err := dec.DecodeBits(obs)
	if err != nil {
		t.Fatal(err)
	}
	if !EqualMessages(out.Message, msg, p.MessageBits) {
		t.Fatal("noiseless BSC decode failed")
	}
	if out.Cost != 0 {
		t.Fatalf("noiseless BSC decode has Hamming cost %v", out.Cost)
	}
}

func TestBeamDecoderBSCWithErrors(t *testing.T) {
	p := Params{K: 4, C: 10, MessageBits: 16, Seed: 43}
	msg := testMessage(44, p.MessageBits)
	e, _ := NewEncoder(p, msg)
	src := rng.New(45)
	bsc, _ := channel.NewBSC(0.05, src)
	obs, _ := NewBitObservations(e.NumSegments())
	for pass := 0; pass < 20; pass++ {
		for s := 0; s < e.NumSegments(); s++ {
			obs.Add(SymbolPos{Spine: s, Pass: pass}, bsc.CorruptBit(e.CodedBit(s, pass)))
		}
	}
	dec, _ := NewBeamDecoder(p, 16)
	out, err := dec.DecodeBits(obs)
	if err != nil {
		t.Fatal(err)
	}
	if !EqualMessages(out.Message, msg, p.MessageBits) {
		t.Fatal("BSC decode with 5% crossover and 20 passes failed")
	}
}

func TestDecoderInputValidation(t *testing.T) {
	p := DefaultParams()
	dec, err := NewBeamDecoder(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Decode(nil); err == nil {
		t.Error("nil observations accepted")
	}
	wrong, _ := NewObservations(7)
	if _, err := dec.Decode(wrong); err == nil {
		t.Error("mis-sized observations accepted")
	}
	if _, err := dec.DecodeBits(nil); err == nil {
		t.Error("nil bit observations accepted")
	}
	wrongBits, _ := NewBitObservations(7)
	if _, err := dec.DecodeBits(wrongBits); err == nil {
		t.Error("mis-sized bit observations accepted")
	}
	if _, err := NewBeamDecoder(p, 0); err == nil {
		t.Error("zero beam width accepted")
	}
	bad := p
	bad.C = 0
	if _, err := NewBeamDecoder(bad, 4); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestSetMaxCandidates(t *testing.T) {
	p := DefaultParams()
	dec, _ := NewBeamDecoder(p, 16)
	if dec.MaxCandidates() < dec.BeamWidth() {
		t.Fatal("default max candidates below beam width")
	}
	if err := dec.SetMaxCandidates(8); err == nil {
		t.Error("max candidates below beam width accepted")
	}
	if err := dec.SetMaxCandidates(1024); err != nil {
		t.Errorf("valid max candidates rejected: %v", err)
	}
	if dec.MaxCandidates() != 1024 {
		t.Errorf("MaxCandidates = %d", dec.MaxCandidates())
	}
}

func TestNodesExpandedBounded(t *testing.T) {
	p := DefaultParams()
	msg := testMessage(55, p.MessageBits)
	e, _ := NewEncoder(p, msg)
	dec, _ := NewBeamDecoder(p, 16)
	out, err := dec.Decode(observeNoiseless(t, e, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Level 0 expands 2^k nodes from the root, later levels at most B*2^k.
	maxNodes := 1<<uint(p.K) + (p.NumSegments()-1)*16*(1<<uint(p.K))
	if out.NodesExpanded > maxNodes {
		t.Fatalf("NodesExpanded = %d exceeds bound %d", out.NodesExpanded, maxNodes)
	}
	if dec.NodesExpanded() != out.NodesExpanded {
		t.Fatal("decoder accessor disagrees with result")
	}
}

func TestSelectorKeepsLowestCosts(t *testing.T) {
	sel := newSelector[float64](3)
	costs := []float64{5, 1, 9, 3, 7, 2, 8}
	for i, c := range costs {
		sel.offer(cand[float64]{cost: c, key: packKey(0, uint16(i))})
	}
	items := sel.canonical()
	if len(items) != 3 {
		t.Fatalf("selector kept %d items", len(items))
	}
	for _, n := range items {
		if n.cost > 3 {
			t.Fatalf("selector kept cost %v, want only {1,2,3}", n.cost)
		}
	}
}

func TestSelectorFewerThanKeep(t *testing.T) {
	sel := newSelector[float64](10)
	for i := 0; i < 4; i++ {
		sel.offer(cand[float64]{cost: float64(i), key: packKey(0, uint16(i))})
	}
	if len(sel.canonical()) != 4 {
		t.Fatalf("selector dropped items below capacity")
	}
}

func TestSelectorManyOffersExactMembership(t *testing.T) {
	// Force multiple quickselect compactions and verify the surviving set is
	// exactly the keep-smallest, in canonical key order.
	const keep = 32
	const n = 10000
	sel := newSelector[float64](keep)
	src := rng.New(7)
	type ref struct {
		cost float64
		key  int64
	}
	refs := make([]ref, 0, n)
	for i := 0; i < n; i++ {
		c := src.Float64()
		key := packKey(int32(i/8), uint16(i%8))
		refs = append(refs, ref{c, key})
		sel.offer(cand[float64]{cost: c, key: key, spine: uint64(i)})
	}
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].cost != refs[j].cost {
			return refs[i].cost < refs[j].cost
		}
		return refs[i].key < refs[j].key
	})
	want := map[int64]bool{}
	for _, r := range refs[:keep] {
		want[r.key] = true
	}
	items := sel.canonical()
	if len(items) != keep {
		t.Fatalf("selector kept %d items, want %d", len(items), keep)
	}
	for i, n := range items {
		if !want[n.key] {
			t.Fatalf("selector kept key %d, not among the %d smallest", n.key, keep)
		}
		if i > 0 && items[i-1].key >= n.key {
			t.Fatalf("canonical order violated at %d", i)
		}
	}
}

func BenchmarkBeamDecodeOnePass(b *testing.B) {
	p := DefaultParams()
	msg := testMessage(1, p.MessageBits)
	e, _ := NewEncoder(p, msg)
	obs, _ := NewObservations(e.NumSegments())
	src := rng.New(2)
	ch, _ := channel.NewAWGNdB(20, src)
	for s := 0; s < e.NumSegments(); s++ {
		obs.Add(SymbolPos{Spine: s, Pass: 0}, ch.Corrupt(e.Symbol(s, 0)))
	}
	dec, _ := NewBeamDecoder(p, 16)
	// The observations never change between iterations, so incremental reuse
	// would reduce this to a cache hit; disable it to measure one full
	// from-scratch attempt per iteration.
	dec.SetIncremental(false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dec.Decode(obs); err != nil {
			b.Fatal(err)
		}
	}
}
