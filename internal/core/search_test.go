package core

import (
	"fmt"
	"testing"

	"spinal/internal/rng"
)

// approxTestModes returns the non-exact search configs the tests sweep, in
// increasing aggressiveness.
func approxTestModes() []SearchConfig {
	return []SearchConfig{
		{Mode: SearchGap},
		{Mode: SearchLookahead},
		{Mode: SearchApprox},
	}
}

// TestParseSearchConfig checks the CLI spellings, their round-trip through
// String, and the rejection of malformed inputs.
func TestParseSearchConfig(t *testing.T) {
	good := []struct {
		in   string
		want SearchConfig
	}{
		{"", SearchConfig{}},
		{"exact", SearchConfig{}},
		{"gap", SearchConfig{Mode: SearchGap}},
		{"gap:2.5", SearchConfig{Mode: SearchGap, CostGap: 2.5, PerLevel: true}},
		{"lookahead", SearchConfig{Mode: SearchLookahead}},
		{"lookahead:6", SearchConfig{Mode: SearchLookahead, ExpandTop: 6}},
		{"approx", SearchConfig{Mode: SearchApprox}},
	}
	for _, tc := range good {
		got, err := ParseSearchConfig(tc.in)
		if err != nil {
			t.Errorf("ParseSearchConfig(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseSearchConfig(%q) = %+v, want %+v", tc.in, got, tc.want)
			continue
		}
		if tc.in == "" {
			continue
		}
		back, err := ParseSearchConfig(got.String())
		if err != nil || back != got {
			t.Errorf("round trip of %q through %q: %+v, %v", tc.in, got.String(), back, err)
		}
	}
	for _, bad := range []string{"fuzzy", "gap:", "gap:-1", "gap:x", "lookahead:0", "lookahead:q", "approx:3", "exact:1"} {
		if _, err := ParseSearchConfig(bad); err == nil {
			t.Errorf("ParseSearchConfig(%q) unexpectedly succeeded", bad)
		}
	}
}

// TestSetSearchConfigNormalizes checks that installed configs resolve their
// zero refinements against the beam width and that exact resets cleanly.
func TestSetSearchConfigNormalizes(t *testing.T) {
	dec, err := NewBeamDecoder(exactPinParams(), 16)
	if err != nil {
		t.Fatal(err)
	}
	defer dec.Close()
	if err := dec.SetSearchConfig(SearchConfig{Mode: SearchApprox}); err != nil {
		t.Fatal(err)
	}
	got := dec.SearchConfig()
	if got.ExpandTop != 8 || got.CostGap != DefaultCostGap || !got.PerLevel || got.CommitLevels != DefaultCommitLevels {
		t.Fatalf("normalized approx config = %+v", got)
	}
	if err := dec.SetSearchConfig(SearchConfig{Mode: SearchLookahead, ExpandTop: 99}); err != nil {
		t.Fatal(err)
	}
	if got := dec.SearchConfig(); got.ExpandTop != 16 {
		t.Fatalf("ExpandTop not clamped to the beam width: %+v", got)
	}
	if err := dec.SetSearchConfig(SearchConfig{}); err != nil {
		t.Fatal(err)
	}
	if got := dec.SearchConfig(); got != (SearchConfig{}) {
		t.Fatalf("exact did not normalize to the zero config: %+v", got)
	}
	if err := dec.SetSearchConfig(SearchConfig{Mode: SearchMode(9)}); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if err := dec.SetSearchConfig(SearchConfig{Mode: SearchGap, CostGap: -2}); err == nil {
		t.Fatal("negative gap accepted")
	}
}

// TestApproxModesRoundTripNoiseless checks the fundamental contract under
// every approximate mode: two noiseless passes still decode exactly. The
// true path has zero cost at every level, so no gap can prune it and no
// lookahead ranking can demote it.
func TestApproxModesRoundTripNoiseless(t *testing.T) {
	p := exactPinParams()
	for _, mode := range approxTestModes() {
		for _, metric := range []CostMetric{CostFloat64, CostInt32} {
			msg, _ := awgnPinStream(t, 0)
			enc, err := NewEncoder(p, msg)
			if err != nil {
				t.Fatal(err)
			}
			dec, err := NewBeamDecoder(p, exactPinBeam)
			if err != nil {
				t.Fatal(err)
			}
			if err := dec.SetCostMetric(metric); err != nil {
				t.Fatal(err)
			}
			if err := dec.SetSearchConfig(mode); err != nil {
				t.Fatal(err)
			}
			obs, err := NewObservations(p.NumSegments())
			if err != nil {
				t.Fatal(err)
			}
			for pass := 0; pass < 2; pass++ {
				for s := 0; s < p.NumSegments(); s++ {
					if err := obs.Add(SymbolPos{Spine: s, Pass: pass}, enc.Symbol(s, pass)); err != nil {
						t.Fatal(err)
					}
				}
				out, err := dec.Decode(obs)
				if err != nil {
					t.Fatal(err)
				}
				if pass == 1 && !EqualMessages(out.Message, msg, p.MessageBits) {
					t.Errorf("mode %v metric %v: noiseless round trip failed", mode, metric)
				}
			}
			dec.Close()
		}
	}
}

// TestApproxDeterministicAcrossWorkers checks that approximate decodes, like
// exact ones, are bit-identical at every worker count: all narrowing happens
// in the single-threaded post-selection section.
func TestApproxDeterministicAcrossWorkers(t *testing.T) {
	p := exactPinParams()
	for _, mode := range approxTestModes() {
		var ref []string
		for _, workers := range exactPinWorkers() {
			dec, err := NewBeamDecoder(p, exactPinBeam)
			if err != nil {
				t.Fatal(err)
			}
			if err := dec.SetSearchConfig(mode); err != nil {
				t.Fatal(err)
			}
			dec.SetParallelism(workers)
			var got []string
			for trial := 0; trial < 2; trial++ {
				_, byPass := awgnPinStream(t, trial)
				obs, err := NewObservations(p.NumSegments())
				if err != nil {
					t.Fatal(err)
				}
				for pass, row := range byPass {
					for s, y := range row {
						if err := obs.Add(SymbolPos{Spine: s, Pass: pass}, y); err != nil {
							t.Fatal(err)
						}
					}
					out, err := dec.Decode(obs)
					if err != nil {
						t.Fatal(err)
					}
					got = append(got, fmt.Sprintf("%x/%v/%d/%d/%d",
						out.Message, out.Cost, out.NodesExpanded, out.NodesRefreshed, out.NodesSaved))
				}
			}
			dec.Close()
			if ref == nil {
				ref = got
				continue
			}
			for i := range got {
				if got[i] != ref[i] {
					t.Fatalf("mode %v: workers=%d diverged at attempt %d:\n%s\nvs\n%s",
						mode, workers, i, got[i], ref[i])
				}
			}
		}
	}
}

// TestApproxIncrementalMatchesScratchWithoutCommit checks that with prefix
// commit disabled, the gap/lookahead narrowing composes with incremental
// reuse exactly: resumed attempts produce the same messages and costs as
// from-scratch ones. (With commit enabled they may differ — freezing the
// prefix against revision IS the approximation commit makes.)
func TestApproxIncrementalMatchesScratchWithoutCommit(t *testing.T) {
	p := exactPinParams()
	for _, mode := range approxTestModes() {
		mode.CommitLevels = -1
		var fps [2][]string
		for vi, incremental := range []bool{true, false} {
			dec, err := NewBeamDecoder(p, exactPinBeam)
			if err != nil {
				t.Fatal(err)
			}
			if err := dec.SetSearchConfig(mode); err != nil {
				t.Fatal(err)
			}
			dec.SetIncremental(incremental)
			dec.SetParallelism(1)
			for trial := 0; trial < 2; trial++ {
				_, byPass := awgnPinStream(t, trial)
				obs, err := NewObservations(p.NumSegments())
				if err != nil {
					t.Fatal(err)
				}
				for pass, row := range byPass {
					for s, y := range row {
						if err := obs.Add(SymbolPos{Spine: s, Pass: pass}, y); err != nil {
							t.Fatal(err)
						}
					}
					out, err := dec.Decode(obs)
					if err != nil {
						t.Fatal(err)
					}
					fps[vi] = append(fps[vi], fmt.Sprintf("%x/%v", out.Message, out.Cost))
				}
			}
			dec.Close()
		}
		for i := range fps[0] {
			if fps[0][i] != fps[1][i] {
				t.Fatalf("mode %v (commit off): incremental diverged from scratch at attempt %d: %s vs %s",
					mode, i, fps[0][i], fps[1][i])
			}
		}
	}
}

// approxSessionStream extends the AWGN pin stream to a longer pass budget so
// session-level tests have headroom: an approximation that costs one extra
// pass still completes instead of failing outright.
func approxSessionStream(t *testing.T, trial, passes int) (msg []byte, flat []complex128) {
	t.Helper()
	p := exactPinParams()
	msg = RandomMessage(rng.New(uint64(trial+1)*0x9e3779b9), p.MessageBits)
	enc, err := NewEncoder(p, msg)
	if err != nil {
		t.Fatal(err)
	}
	noise := rng.New(uint64(trial+1) * 0xbb67ae85)
	for pass := 0; pass < passes; pass++ {
		for s := 0; s < p.NumSegments(); s++ {
			flat = append(flat, enc.Symbol(s, pass)+
				complex(0.22*noise.NormFloat64(), 0.22*noise.NormFloat64()))
		}
	}
	return msg, flat
}

// runApproxSession runs one fixed-seed session under a search config; the
// session-level search tests compare its transcript across configs.
func runApproxSession(t *testing.T, trial, passes int, search SearchConfig) *Result {
	t.Helper()
	p := exactPinParams()
	msg, flat := approxSessionStream(t, trial, passes)
	cfg := SessionConfig{
		Params: p, BeamWidth: exactPinBeam, Parallelism: 1,
		MaxSymbols: len(flat), Search: search,
		Attempts: AttemptEveryPass{},
	}
	i := 0
	res, err := RunSymbolSession(cfg, msg, func(complex128) complex128 {
		y := flat[i]
		i++
		return y
	}, GenieVerifier(msg, p.MessageBits))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestApproxSavesNodes checks the point of the whole exercise: on a noisy
// multi-pass session, every approximate mode expands fewer nodes than the
// exact search while still delivering the message, and reports non-zero
// NodesSaved.
func TestApproxSavesNodes(t *testing.T) {
	run := func(search SearchConfig) *Result { return runApproxSession(t, 1, 8, search) }
	exact := run(SearchConfig{})
	if !exact.Success {
		t.Fatal("exact session failed; pick a better operating point")
	}
	for _, mode := range approxTestModes() {
		res := run(mode)
		if !res.Success {
			t.Errorf("mode %v: session failed", mode)
			continue
		}
		if res.NodesExpanded >= exact.NodesExpanded {
			t.Errorf("mode %v: expanded %d nodes, exact %d — no savings",
				mode, res.NodesExpanded, exact.NodesExpanded)
		}
		if res.NodesSaved == 0 {
			t.Errorf("mode %v: NodesSaved = 0", mode)
		}
	}
}

// TestCostGapMonotonicity pins the empirical monotonicity of the gap knob on
// a fixed seed set: widening the gap only ever adds surviving candidates, so
// the delivered rate must not drop as the gap grows. (Not a theorem — a
// wider beam can in principle steal a downstream slot — but deterministic on
// these seeds, so pinned as a regression guard.)
func TestCostGapMonotonicity(t *testing.T) {
	p := exactPinParams()
	gaps := []float64{1, 2, 3, 4, 6, 8}
	const trials = 6
	rate := func(gap float64) float64 {
		t.Helper()
		var sum float64
		for trial := 0; trial < trials; trial++ {
			res := runApproxSession(t, trial, 8,
				SearchConfig{Mode: SearchGap, CostGap: gap, PerLevel: true})
			sum += res.Rate(p.MessageBits)
		}
		return sum
	}
	prev := -1.0
	for _, g := range gaps {
		r := rate(g)
		if r < prev-1e-9 {
			t.Fatalf("aggregate rate dropped when widening gap to %g: %v -> %v", g, prev, r)
		}
		prev = r
	}
}

// TestLeasedDecoderMatchesFreshAcrossMetricAndSearch is the satellite pool
// property: a pooled decoder that previously ran under any (metric, search)
// tuning must, after Release and re-Lease, decode exactly like a freshly
// constructed decoder under every (metric, search) combination.
func TestLeasedDecoderMatchesFreshAcrossMetricAndSearch(t *testing.T) {
	p := exactPinParams()
	pool := NewDecoderPool(2)
	searches := append([]SearchConfig{{}}, approxTestModes()...)
	for _, metric := range []CostMetric{CostFloat64, CostInt32} {
		for _, search := range searches {
			lease, err := pool.Lease(p, exactPinBeam)
			if err != nil {
				t.Fatal(err)
			}
			if got := lease.Dec.SearchConfig(); got != (SearchConfig{}) {
				t.Fatalf("leased decoder came back with search config %+v", got)
			}
			if got := lease.Dec.CostMetric(); got != CostFloat64 {
				t.Fatalf("leased decoder came back with metric %v", got)
			}
			if err := lease.Dec.SetCostMetric(metric); err != nil {
				t.Fatal(err)
			}
			if err := lease.Dec.SetSearchConfig(search); err != nil {
				t.Fatal(err)
			}
			lease.Dec.SetParallelism(1)

			fresh, err := NewBeamDecoder(p, exactPinBeam)
			if err != nil {
				t.Fatal(err)
			}
			if err := fresh.SetCostMetric(metric); err != nil {
				t.Fatal(err)
			}
			if err := fresh.SetSearchConfig(search); err != nil {
				t.Fatal(err)
			}
			fresh.SetParallelism(1)
			freshObs, err := NewObservations(p.NumSegments())
			if err != nil {
				t.Fatal(err)
			}

			_, byPass := awgnPinStream(t, 2)
			for pass, row := range byPass {
				for s, y := range row {
					if err := lease.Obs.Add(SymbolPos{Spine: s, Pass: pass}, y); err != nil {
						t.Fatal(err)
					}
					if err := freshObs.Add(SymbolPos{Spine: s, Pass: pass}, y); err != nil {
						t.Fatal(err)
					}
				}
				got, err := lease.Dec.Decode(lease.Obs)
				if err != nil {
					t.Fatal(err)
				}
				want, err := fresh.Decode(freshObs)
				if err != nil {
					t.Fatal(err)
				}
				if got.Cost != want.Cost || got.NodesExpanded != want.NodesExpanded ||
					got.NodesRefreshed != want.NodesRefreshed || got.NodesSaved != want.NodesSaved ||
					!EqualMessages(got.Message, want.Message, p.MessageBits) {
					t.Fatalf("metric %v search %v pass %d: leased diverged from fresh: %+v vs %+v",
						metric, search, pass, got, want)
				}
			}
			fresh.Close()
			lease.Release()
		}
	}
}
