package core

import (
	"math"
	"testing"

	"spinal/internal/channel"
	"spinal/internal/rng"
)

func TestParseCostMetric(t *testing.T) {
	cases := []struct {
		in   string
		want CostMetric
	}{
		{"", CostFloat64}, {"float64", CostFloat64}, {"float", CostFloat64},
		{"exact", CostFloat64},
		{"int32", CostInt32}, {"quantized", CostInt32}, {"quant", CostInt32},
	}
	for _, c := range cases {
		got, err := ParseCostMetric(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseCostMetric(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	if _, err := ParseCostMetric("fixed"); err == nil {
		t.Error("unknown spelling accepted")
	}
	if CostFloat64.String() != "float64" || CostInt32.String() != "int32" {
		t.Errorf("String() spellings wrong: %q %q", CostFloat64, CostInt32)
	}
}

func TestQuantCoord(t *testing.T) {
	if got := quantCoord(0); got != 0 {
		t.Errorf("quantCoord(0) = %d", got)
	}
	if got := quantCoord(1); got != costQuantScale {
		t.Errorf("quantCoord(1) = %d, want %d", got, costQuantScale)
	}
	if got := quantCoord(-1); got != -costQuantScale {
		t.Errorf("quantCoord(-1) = %d", got)
	}
	// Half-step inputs round to even, matching the ADC quantizer convention.
	if got := quantCoord(1.5 / costQuantScale); got != 2 {
		t.Errorf("quantCoord(1.5 steps) = %d, want 2 (round-to-even)", got)
	}
	if got := quantCoord(2.5 / costQuantScale); got != 2 {
		t.Errorf("quantCoord(2.5 steps) = %d, want 2 (round-to-even)", got)
	}
	// Out-of-range coordinates clip like the ADC does.
	if got := quantCoord(1e9); got != costQuantMax {
		t.Errorf("quantCoord(+inf-ish) = %d, want %d", got, costQuantMax)
	}
	if got := quantCoord(-1e9); got != -costQuantMax {
		t.Errorf("quantCoord(-inf-ish) = %d, want %d", got, -costQuantMax)
	}
}

func TestSaturatingAdds(t *testing.T) {
	if got := satAdd32(math.MaxInt32, 1); got != math.MaxInt32 {
		t.Errorf("satAdd32 overflow = %d", got)
	}
	if got := satAdd32(math.MinInt32, -1); got != math.MinInt32 {
		t.Errorf("satAdd32 underflow = %d", got)
	}
	if got := satAdd32(40, 2); got != 42 {
		t.Errorf("satAdd32(40,2) = %d", got)
	}
	if got := sat32(int64(math.MaxInt32) + 7); got != math.MaxInt32 {
		t.Errorf("sat32 overflow = %d", got)
	}
	if got := sat32(-1 << 40); got != math.MinInt32 {
		t.Errorf("sat32 underflow = %d", got)
	}
	if got := sat32(-5); got != -5 {
		t.Errorf("sat32(-5) = %d", got)
	}
	// A column of saturating adds must pin at the ceiling rather than wrap
	// into a falsely attractive low cost.
	var ops i32Ops
	dst := []int32{math.MaxInt32 - 1, 10}
	ops.AddTo(dst, math.MaxInt32)
	if dst[0] != math.MaxInt32 || dst[1] != math.MaxInt32 {
		t.Errorf("AddTo did not saturate: %v", dst)
	}
}

// TestInt32MetricDecodesAWGN is the quantized metric's round-trip test: at a
// workable SNR the int32 decoder must recover nearly every message, just like
// the float64 path does in TestBeamDecoderWithAWGN.
func TestInt32MetricDecodesAWGN(t *testing.T) {
	p := DefaultParams()
	src := rng.New(7)
	ch, err := channel.NewAWGNdB(15, src)
	if err != nil {
		t.Fatal(err)
	}
	dec, _ := NewBeamDecoder(p, 16)
	if err := dec.SetCostMetric(CostInt32); err != nil {
		t.Fatal(err)
	}
	if dec.CostMetric() != CostInt32 {
		t.Fatal("CostMetric() does not report the configured metric")
	}
	msgSrc := rng.New(8)
	correct := 0
	for i := 0; i < 20; i++ {
		msg := RandomMessage(msgSrc, p.MessageBits)
		e, _ := NewEncoder(p, msg)
		obs, _ := NewObservations(e.NumSegments())
		for pass := 0; pass < 3; pass++ {
			for s := 0; s < e.NumSegments(); s++ {
				obs.Add(SymbolPos{Spine: s, Pass: pass}, ch.Corrupt(e.Symbol(s, pass)))
			}
		}
		out, err := dec.Decode(obs)
		if err != nil {
			t.Fatal(err)
		}
		if EqualMessages(out.Message, msg, p.MessageBits) {
			correct++
		}
	}
	if correct < 18 {
		t.Fatalf("only %d/20 messages decoded under the int32 metric at 15 dB", correct)
	}
}

// TestInt32MetricBSCMatchesFloat pins the BSC equivalence: Hamming distances
// are integers in either carrier, so the int32 metric is the exact BSC metric
// and every decode must return the same message with the same node counts.
func TestInt32MetricBSCMatchesFloat(t *testing.T) {
	p := Params{K: 4, C: 10, MessageBits: 16, Seed: 43}
	src := rng.New(45)
	bsc, _ := channel.NewBSC(0.05, src)
	fdec, _ := NewBeamDecoder(p, 16)
	qdec, _ := NewBeamDecoder(p, 16)
	if err := qdec.SetCostMetric(CostInt32); err != nil {
		t.Fatal(err)
	}
	msgSrc := rng.New(46)
	for i := 0; i < 10; i++ {
		msg := RandomMessage(msgSrc, p.MessageBits)
		e, _ := NewEncoder(p, msg)
		obs, _ := NewBitObservations(e.NumSegments())
		for pass := 0; pass < 20; pass++ {
			for s := 0; s < e.NumSegments(); s++ {
				obs.Add(SymbolPos{Spine: s, Pass: pass}, bsc.CorruptBit(e.CodedBit(s, pass)))
			}
		}
		fout, err := fdec.DecodeBits(obs)
		if err != nil {
			t.Fatal(err)
		}
		qout, err := qdec.DecodeBits(obs)
		if err != nil {
			t.Fatal(err)
		}
		if !EqualMessages(fout.Message, qout.Message, p.MessageBits) {
			t.Fatalf("message %d: int32 BSC decode %x differs from float64 %x", i, qout.Message, fout.Message)
		}
		if fout.Cost != qout.Cost {
			t.Fatalf("message %d: Hamming costs differ: float %v int32 %v", i, fout.Cost, qout.Cost)
		}
		if fout.NodesExpanded != qout.NodesExpanded {
			t.Fatalf("message %d: NodesExpanded differ: float %d int32 %d", i, fout.NodesExpanded, qout.NodesExpanded)
		}
	}
}

// nonTableMapper is a constellation mapper without a per-dimension table; the
// int32 metric cannot derive its integer grid from it.
type nonTableMapper struct{}

func (nonTableMapper) Map(word uint32) complex128 { return complex(float64(word), 0) }
func (nonTableMapper) C() int                     { return 10 }
func (nonTableMapper) Name() string               { return "non-table" }

func TestSetCostMetricValidation(t *testing.T) {
	p := DefaultParams()
	p.Mapper = nonTableMapper{}
	dec, err := NewBeamDecoder(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := dec.SetCostMetric(CostInt32); err == nil {
		t.Error("int32 metric accepted without a table-backed mapper")
	}
	if err := dec.SetCostMetric(CostFloat64); err != nil {
		t.Errorf("float64 metric rejected: %v", err)
	}
	tdec, _ := NewBeamDecoder(DefaultParams(), 16)
	if err := tdec.SetCostMetric(CostMetric(99)); err == nil {
		t.Error("unknown metric value accepted")
	}
}

// TestMetricSwitchInvalidatesWorkspace switches the metric between
// incremental attempts on the same decoder; the cached cost sums of one
// carrier do not describe the other, so each switch must force a from-root
// rebuild that still decodes correctly.
func TestMetricSwitchInvalidatesWorkspace(t *testing.T) {
	p := DefaultParams()
	msg := testMessage(11, p.MessageBits)
	e, _ := NewEncoder(p, msg)
	obs := observeNoiseless(t, e, 2)
	dec, _ := NewBeamDecoder(p, 16)
	for _, m := range []CostMetric{CostFloat64, CostInt32, CostFloat64, CostInt32} {
		if err := dec.SetCostMetric(m); err != nil {
			t.Fatal(err)
		}
		out, err := dec.Decode(obs)
		if err != nil {
			t.Fatal(err)
		}
		if !EqualMessages(out.Message, msg, p.MessageBits) {
			t.Fatalf("noiseless decode failed under %v after metric switch", m)
		}
	}
}

func TestPoolLeaseResetRestoresFloatMetric(t *testing.T) {
	pool := NewDecoderPool(2)
	defer pool.Drain()
	p := DefaultParams()
	lease, err := pool.Lease(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := lease.Dec.SetCostMetric(CostInt32); err != nil {
		t.Fatal(err)
	}
	lease.Release()
	again, err := pool.Lease(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer again.Release()
	if got := again.Dec.CostMetric(); got != CostFloat64 {
		t.Fatalf("re-leased decoder metric = %v, want float64 (Release must reset the metric)", got)
	}
}
