package core

import (
	"testing"
	"testing/quick"
)

func TestSequentialScheduleOrder(t *testing.T) {
	sched, err := NewSequentialSchedule(3)
	if err != nil {
		t.Fatal(err)
	}
	want := []SymbolPos{
		{0, 0}, {1, 0}, {2, 0},
		{0, 1}, {1, 1}, {2, 1},
		{0, 2},
	}
	for i, w := range want {
		if got := sched.Pos(i); got != w {
			t.Fatalf("Pos(%d) = %+v, want %+v", i, got, w)
		}
	}
	if sched.Name() == "" {
		t.Error("empty schedule name")
	}
}

func TestSequentialScheduleCoversEveryPosition(t *testing.T) {
	prop := func(nRaw uint8, passesRaw uint8) bool {
		nseg := int(nRaw%10) + 1
		passes := int(passesRaw%5) + 1
		sched, err := NewSequentialSchedule(nseg)
		if err != nil {
			return false
		}
		seen := map[SymbolPos]bool{}
		for i := 0; i < nseg*passes; i++ {
			pos := sched.Pos(i)
			if pos.Spine < 0 || pos.Spine >= nseg || pos.Pass < 0 || pos.Pass >= passes {
				return false
			}
			if seen[pos] {
				return false
			}
			seen[pos] = true
		}
		return len(seen) == nseg*passes
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStripedScheduleIsPermutationPerPass(t *testing.T) {
	prop := func(nRaw, strideRaw uint8) bool {
		nseg := int(nRaw%20) + 1
		stride := int(strideRaw%10) + 1
		sched, err := NewStripedSchedule(nseg, stride)
		if err != nil {
			return false
		}
		for pass := 0; pass < 3; pass++ {
			seen := make([]bool, nseg)
			for j := 0; j < nseg; j++ {
				pos := sched.Pos(pass*nseg + j)
				if pos.Pass != pass {
					return false
				}
				if pos.Spine < 0 || pos.Spine >= nseg || seen[pos.Spine] {
					return false
				}
				seen[pos.Spine] = true
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStripedScheduleSendsTailFirst(t *testing.T) {
	for _, nseg := range []int{2, 3, 8, 17} {
		sched, err := NewStripedSchedule(nseg, 8)
		if err != nil {
			t.Fatal(err)
		}
		if got := sched.Pos(0); got.Spine != nseg-1 || got.Pass != 0 {
			t.Fatalf("nseg=%d: first symbol is %+v, want final spine value of pass 0", nseg, got)
		}
	}
}

func TestStripedScheduleClampsStride(t *testing.T) {
	sched, err := NewStripedSchedule(3, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Must still enumerate a permutation of the three spine values.
	seen := map[int]bool{}
	for i := 0; i < 3; i++ {
		seen[sched.Pos(i).Spine] = true
	}
	if len(seen) != 3 {
		t.Fatalf("clamped stride does not cover all spine values: %v", seen)
	}
}

func TestScheduleErrors(t *testing.T) {
	if _, err := NewSequentialSchedule(0); err == nil {
		t.Error("zero segments accepted")
	}
	if _, err := NewStripedSchedule(0, 8); err == nil {
		t.Error("zero segments accepted")
	}
	if _, err := NewStripedSchedule(4, 0); err == nil {
		t.Error("zero stride accepted")
	}
}

func TestSchedulePanicsOnNegativeIndex(t *testing.T) {
	sched, _ := NewSequentialSchedule(3)
	defer func() {
		if recover() == nil {
			t.Fatal("negative index did not panic")
		}
	}()
	sched.Pos(-1)
}

func TestScheduleByName(t *testing.T) {
	if s, err := ScheduleByName("sequential", 5); err != nil || s.Name() != "sequential" {
		t.Errorf("sequential: %v %v", s, err)
	}
	if s, err := ScheduleByName("", 5); err != nil || s == nil {
		t.Errorf("default: %v %v", s, err)
	}
	if s, err := ScheduleByName("striped", 5); err != nil || s == nil {
		t.Errorf("striped: %v %v", s, err)
	}
	if _, err := ScheduleByName("bogus", 5); err == nil {
		t.Error("unknown schedule accepted")
	}
}
