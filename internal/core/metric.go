package core

import (
	"fmt"
	"math"
)

// CostMetric selects the arithmetic the beam decoder accumulates path costs
// in. The default exact float64 metric is the reference; the quantized int32
// metric trades a small, measured rate tariff for integer-only cost folds —
// the fixed-point arithmetic a hardware decoder would ship, following the
// receiver's 14-bit ADC quantizer precedent in internal/channel.
type CostMetric uint8

const (
	// CostFloat64 is the exact metric: float64 squared-Euclidean (AWGN) or
	// Hamming (BSC) path costs. Decodes are bit-identical across worker
	// counts and across incremental/from-scratch attempts.
	CostFloat64 CostMetric = iota
	// CostInt32 is the quantized metric: observations and replayed symbol
	// coordinates are snapped to a fixed-point grid (costQuantScale steps
	// per unit-energy coordinate) and per-term costs accumulate in int32
	// with saturating adds. Deterministic like the float path, but its
	// decisions can differ from the exact metric's near ties; the
	// `quantcost` registry scenario measures the resulting rate tariff.
	CostInt32
)

// String renders the metric the way the -metric CLI flags spell it.
func (m CostMetric) String() string {
	switch m {
	case CostFloat64:
		return "float64"
	case CostInt32:
		return "int32"
	default:
		return fmt.Sprintf("CostMetric(%d)", uint8(m))
	}
}

// ParseCostMetric resolves a CLI spelling of a cost metric. The empty string
// selects the float64 default.
func ParseCostMetric(s string) (CostMetric, error) {
	switch s {
	case "", "float64", "float", "exact":
		return CostFloat64, nil
	case "int32", "quantized", "quant":
		return CostInt32, nil
	default:
		return CostFloat64, fmt.Errorf("core: unknown cost metric %q (want float64 or int32)", s)
	}
}

// costValue is the carrier type of a decoder engine's cost arithmetic: exact
// float64 or quantized int32. Both are ordered, which is all the selection
// machinery needs; accumulation goes through costOps so the int32 carrier
// can saturate.
type costValue interface {
	~float64 | ~int32
}

// costOps supplies the accumulation operator of a cost carrier. It is a
// zero-size struct type parameter rather than a method set on the carrier so
// the generic engine's hot loops dispatch statically and inline.
type costOps[C costValue] interface {
	// Add accumulates two cost values (saturating for int32).
	Add(a, b C) C
	// AddTo sets dst[i] = Add(base, dst[i]) for every element. The engine's
	// expansion loops reconstitute path costs (parent cost + child local
	// cost) a parent block at a time through it, so the per-child arithmetic
	// runs inside the concrete implementation instead of through a generic
	// dictionary call per child.
	AddTo(dst []C, base C)
}

// f64Ops is the exact float64 cost arithmetic.
type f64Ops struct{}

func (f64Ops) Add(a, b float64) float64 { return a + b }

func (f64Ops) AddTo(dst []float64, base float64) {
	for i := range dst {
		dst[i] = base + dst[i]
	}
}

// i32Ops is the quantized int32 cost arithmetic with saturating adds.
type i32Ops struct{}

func (i32Ops) Add(a, b int32) int32 { return satAdd32(a, b) }

func (i32Ops) AddTo(dst []int32, base int32) {
	for i := range dst {
		dst[i] = satAdd32(base, dst[i])
	}
}

// satAdd32 adds two int32 values, clamping at the representable range
// instead of wrapping. Saturation keeps hopeless candidates pinned at the
// maximum cost rather than wrapping around into falsely attractive ones.
func satAdd32(a, b int32) int32 {
	s := int64(a) + int64(b)
	if s > math.MaxInt32 {
		return math.MaxInt32
	}
	if s < math.MinInt32 {
		return math.MinInt32
	}
	return int32(s)
}

// sat32 clamps an int64 per-term cost into the int32 carrier.
func sat32(v int64) int32 {
	if v > math.MaxInt32 {
		return math.MaxInt32
	}
	if v < math.MinInt32 {
		return math.MinInt32
	}
	return int32(v)
}

// costQuantScale is the resolution of the int32 metric's fixed-point grid:
// quantized coordinates count in 1/512 steps of the unit-energy constellation
// scale. At the highest SNR the experiments sweep (40 dB) the per-dimension
// noise deviation is ~3.6 grid steps, so quantization noise stays below
// channel noise across the operating range; per-term costs stay ~2^21 or
// smaller, leaving int32 headroom for hundreds of accumulated terms before
// the saturating adds engage.
const costQuantScale = 512

// costQuantMax clamps quantized coordinates, mirroring the ADC quantizer's
// clipping. +/-32767 spans +/-64 unit-energy units — far outside any real
// observation — and keeps a single term's squared distance within int32.
const costQuantMax = 1<<15 - 1

// quantCoord snaps one I/Q coordinate onto the int32 metric's grid.
func quantCoord(v float64) int32 {
	q := math.RoundToEven(v * costQuantScale)
	if q > costQuantMax {
		return costQuantMax
	}
	if q < -costQuantMax {
		return -costQuantMax
	}
	return int32(q)
}
