package core

import (
	"fmt"
	"sync"
)

// DecoderPool caches fully constructed (BeamDecoder, Observations) pairs
// keyed by code parameters and beam width, so that a serving path handling
// many concurrent messages — the flow-multiplexed link receiver in
// particular — reuses decoders (and their incremental workspaces and worker
// pools) across messages and flows instead of rebuilding them per message.
//
// The pool hands decoders out as leases: Lease returns an idle decoder for
// the requested parameters (or builds a fresh one on a miss) and
// LeasedDecoder.Release puts it back. A released pair is reset before it is
// cached — Observations.Reset bumps the container's epoch, which forces the
// decoder's next Decode to rebuild from the root, and any per-lease tuning
// (incremental mode, the unobserved-level cap) is reverted to construction
// defaults — so a pooled decoder is bit-identical in behaviour to a freshly
// constructed one; only allocations and goroutine pools are recycled. The total number of idle decoders is
// bounded by the pool capacity: releases beyond it close the decoder and
// drop it instead of caching it.
//
// All methods are safe for concurrent use. A capacity of zero or less
// disables caching entirely (every Lease builds, every Release closes),
// which keeps the "pool off" configuration on the exact same code path.
type DecoderPool struct {
	mu       sync.Mutex
	capacity int
	idle     map[poolKey][]*LeasedDecoder
	idleN    int
	stats    PoolStats
}

// DefaultDecoderPoolCapacity is the idle-decoder bound used when a pool is
// constructed with a zero capacity request by higher layers that want "a
// reasonable default" (the link receiver). NewDecoderPool itself takes the
// capacity literally.
const DefaultDecoderPoolCapacity = 64

// poolKey identifies decoders that are interchangeable: same code
// parameters, same hash seed, same constellation mapping, same beam width.
type poolKey struct {
	k, c, messageBits int
	seed              uint64
	mapper            string
	beamWidth         int
}

// PoolStats counts pool traffic; it is reported by Stats for diagnostics,
// experiments and tests.
type PoolStats struct {
	// Hits is the number of leases served from the idle cache.
	Hits uint64 `json:"hits"`
	// Misses is the number of leases that had to build a fresh decoder.
	Misses uint64 `json:"misses"`
	// Discards is the number of releases dropped because the pool was at
	// capacity (the decoder is closed, not cached).
	Discards uint64 `json:"discards"`
	// Idle is the number of decoders currently cached.
	Idle int `json:"idle"`
	// Outstanding is the number of leases checked out and not yet released.
	// A non-zero count after a consumer claims to have drained is a decoder
	// leak; chaos and shutdown tests gate on it reading zero.
	Outstanding int `json:"outstanding"`
}

// LeasedDecoder is one decoder/observation pair checked out of a
// DecoderPool. The caller owns Dec and Obs exclusively until Release.
type LeasedDecoder struct {
	Dec *BeamDecoder
	Obs *Observations

	key    poolKey
	pool   *DecoderPool
	bitObs *BitObservations
	leased bool
}

// Bits returns the lease's binary observation container, building it on
// first use, so BSC-side consumers can pool decoders exactly like the
// AWGN-side ones. Like Obs, it is reset on Release.
func (l *LeasedDecoder) Bits() (*BitObservations, error) {
	if l.bitObs == nil {
		obs, err := NewBitObservations(l.Dec.p.NumSegments())
		if err != nil {
			return nil, err
		}
		l.bitObs = obs
	}
	return l.bitObs, nil
}

// Reset returns the lease to fresh-decoder behaviour without returning it
// to the pool: the observation containers are cleared (the epoch bump
// forces the next Decode to rebuild from the root) and any per-lease
// decoder tuning — incremental mode, the unobserved-level cap, the cost
// metric, the search strategy — reverts to construction defaults. A caller holding one lease
// across many trials (the experiment runner's per-worker reuse) therefore
// gets bit-identical results to leasing a fresh decoder per trial.
// Parallelism is left alone — it never changes decode results, and every
// pooled consumer sets it explicitly.
func (l *LeasedDecoder) Reset() {
	l.Obs.Reset()
	if l.bitObs != nil {
		l.bitObs.Reset()
	}
	l.Dec.SetIncremental(true)
	l.Dec.SetCostMetric(CostFloat64)      // cannot fail: float64 is always valid
	l.Dec.SetSearchConfig(SearchConfig{}) // cannot fail: exact is always valid
	def := DefaultMaxCandidates(l.Dec.p, l.Dec.b)
	if l.Dec.maxCand != def {
		l.Dec.maxCand = def
		l.Dec.invalidateWorkspaces()
	}
}

// NewDecoderPool returns a pool that caches up to capacity idle decoders
// across all parameter keys. A capacity <= 0 disables caching.
func NewDecoderPool(capacity int) *DecoderPool {
	return &DecoderPool{
		capacity: capacity,
		idle:     map[poolKey][]*LeasedDecoder{},
	}
}

// Capacity returns the configured idle-decoder bound.
func (p *DecoderPool) Capacity() int { return p.capacity }

// keyFor derives the pool key for a parameter set. Params with a nil Mapper
// use the default linear mapping, which is what the key records.
func keyFor(params Params, beamWidth int) poolKey {
	mapper := "linear"
	if params.Mapper != nil {
		mapper = params.Mapper.Name()
	}
	return poolKey{
		k:           params.K,
		c:           params.C,
		messageBits: params.MessageBits,
		seed:        params.Seed,
		mapper:      mapper,
		beamWidth:   beamWidth,
	}
}

// LeaseKey returns a canonical string identifying the decoder-compatibility
// class of (params, beamWidth) — the exact discrimination the pool's
// internal key makes. Callers that cache leases themselves (the sim
// runner's per-worker cache) key on it, so their caches can never conflate
// decoders the pool distinguishes.
func LeaseKey(params Params, beamWidth int) string {
	k := keyFor(params, beamWidth)
	return fmt.Sprintf("%d/%d/%d/%x/%s/%d", k.k, k.c, k.messageBits, k.seed, k.mapper, k.beamWidth)
}

// Lease checks a decoder for the given parameters out of the pool, building
// one if no idle decoder matches. The returned lease's Obs container is
// empty and its decoder workspace will rebuild from the root on the first
// Decode, exactly like a fresh decoder.
func (p *DecoderPool) Lease(params Params, beamWidth int) (*LeasedDecoder, error) {
	key := keyFor(params, beamWidth)
	p.mu.Lock()
	if list := p.idle[key]; len(list) > 0 {
		ld := list[len(list)-1]
		p.idle[key] = list[:len(list)-1]
		p.idleN--
		p.stats.Hits++
		p.stats.Outstanding++
		ld.leased = true
		p.mu.Unlock()
		return ld, nil
	}
	p.stats.Misses++
	p.stats.Outstanding++
	p.mu.Unlock()

	unlease := func() {
		p.mu.Lock()
		p.stats.Outstanding--
		p.mu.Unlock()
	}
	dec, err := NewBeamDecoder(params, beamWidth)
	if err != nil {
		unlease()
		return nil, err
	}
	obs, err := NewObservations(params.NumSegments())
	if err != nil {
		unlease()
		return nil, err
	}
	return &LeasedDecoder{Dec: dec, Obs: obs, key: key, pool: p, leased: true}, nil
}

// Release returns the lease to its pool. The observation container is reset
// (bumping its epoch, which invalidates the decoder's incremental workspace
// for the next user); if the pool is at capacity the decoder is closed and
// dropped instead. Release is idempotent: returning the same lease twice is
// a no-op, so eviction races in callers cannot double-cache a decoder.
func (l *LeasedDecoder) Release() {
	if l == nil || l.pool == nil {
		return
	}
	p := l.pool
	p.mu.Lock()
	if !l.leased {
		p.mu.Unlock()
		return
	}
	l.leased = false
	p.stats.Outstanding--
	if p.idleN >= p.capacity {
		p.stats.Discards++
		p.mu.Unlock()
		l.Reset()
		l.Dec.Close()
		return
	}
	p.mu.Unlock()
	// Reset outside the pool lock: clearing a large observation container is
	// not free, and the lease is not reachable from the pool yet.
	l.Reset()
	p.mu.Lock()
	if p.idleN >= p.capacity {
		p.stats.Discards++
		p.mu.Unlock()
		l.Dec.Close()
		return
	}
	p.idle[l.key] = append(p.idle[l.key], l)
	p.idleN++
	p.mu.Unlock()
}

// Stats returns a snapshot of the pool counters.
func (p *DecoderPool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats
	s.Idle = p.idleN
	return s
}

// Drain closes and drops every idle decoder. Leased decoders are unaffected;
// they are closed (not cached) when released only if the pool is full, so a
// drained pool simply refills as leases come back.
func (p *DecoderPool) Drain() {
	p.mu.Lock()
	var all []*LeasedDecoder
	for key, list := range p.idle {
		all = append(all, list...)
		delete(p.idle, key)
	}
	p.idleN = 0
	p.mu.Unlock()
	for _, ld := range all {
		ld.Dec.Close()
	}
}

// String renders the pool state for logs.
func (p *DecoderPool) String() string {
	s := p.Stats()
	return fmt.Sprintf("DecoderPool{idle=%d cap=%d hits=%d misses=%d discards=%d}",
		s.Idle, p.capacity, s.Hits, s.Misses, s.Discards)
}
