package core

import (
	"runtime"
	"sync"
)

// This file is the parallel decode engine: a reusable worker pool owned by
// one BeamDecoder, per-worker shard workspaces reused across attempts so the
// hot loop stays allocation-free, and the deterministic merge that reduces
// per-shard top-keep selections into the level's global frontier.
//
// Correctness rests on the selector's strict total order (see nodeLess): the
// keep-smallest set of a level is unique, every shard retains the
// keep-smallest subset of its own chunk, and the keep-smallest of the union
// of those subsets equals the keep-smallest of the whole level. Each child's
// cost is computed by exactly the same floating-point operations regardless
// of which shard computes it, so parallel decodes are bit-identical to
// serial ones — same messages, same costs, same node accounting — at any
// worker count.
//
// The dispatch path allocates nothing at steady state: the region descriptor
// is a decoder field rather than a closure, the helpers are signalled over
// empty-struct channels, and the WaitGroup is pooled. That keeps per-symbol
// decode attempts — the link receiver's hot loop — free of GC pressure.

// minParallelChildren is the smallest level expansion worth sharding; below
// it the dispatch overhead exceeds the expansion work. It is a variable only
// so the determinism tests can force the sharded path on small trees.
var minParallelChildren = 1024

// minShardChildren is the smallest chunk a single shard should receive; the
// effective worker count is capped so no shard gets less. Variable for the
// same testing reason.
var minShardChildren = 256

// Region kinds mirror the three expansion paths of BeamDecoder.run.
const (
	regionRefresh = iota
	regionRebuild
	regionStream
)

// parRegion describes the parallel region in flight: which expansion path to
// run, its per-level inputs, and the shard geometry. It lives on the decoder
// so dispatching a region allocates nothing.
type parRegion struct {
	kind   int
	coster levelCoster
	lv     *cachedLevel
	parent []treeNode
	t      int
	nObs   int
	nSeg   int
	reuse  bool
	out    []childNode
	units  int
	chunk  int
	keep   int
}

// parShard is one worker's private per-level workspace, reused across levels
// and attempts.
type parShard struct {
	sel       selector
	expanded  int
	refreshed int
}

// SetParallelism sets the number of worker goroutines used to expand each
// level of the decoding tree. Values <= 0 select runtime.GOMAXPROCS(0), the
// default; 1 restores the exact single-threaded path. Results are
// bit-identical at any setting — parallelism changes wall-clock time, never
// the decode.
func (d *BeamDecoder) SetParallelism(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n == d.workers {
		return
	}
	d.workers = n
	d.releasePool()
	d.par = nil
}

// Parallelism reports the configured worker count.
func (d *BeamDecoder) Parallelism() int { return d.workers }

// Close stops the decoder's worker goroutines. The decoder remains usable —
// a later parallel Decode lazily recreates the pool — so Close is purely a
// way to release the helper goroutines promptly instead of waiting for the
// garbage collector's cleanup to do it.
func (d *BeamDecoder) Close() {
	d.releasePool()
}

func (d *BeamDecoder) releasePool() {
	if d.pool != nil {
		d.pool.close()
		d.pool = nil
	}
}

// workersFor decides how many shards to split `children` work units across:
// the configured parallelism, capped so every shard receives a meaningful
// chunk, and 1 when the level is too small to be worth dispatching.
func (d *BeamDecoder) workersFor(children int) int {
	w := d.workers
	if w <= 1 || children < minParallelChildren {
		return 1
	}
	if maxW := children / minShardChildren; w > maxW {
		w = maxW
	}
	if w <= 1 {
		return 1
	}
	return w
}

// runRegion executes one sharded level expansion on w workers — the calling
// goroutine is worker 0, the pool helpers take the rest — then merges the
// per-shard top-keep selections into the global selector (ws.sel, already
// reset by the level loop) and folds the shard work counters into the
// decoder totals. Merge order does not matter: under the total order the
// surviving membership is unique, and the level loop's canonical() sort
// fixes the frontier layout.
func (d *BeamDecoder) runRegion(w int, region parRegion) {
	if d.par == nil {
		d.par = make([]parShard, d.workers)
	}
	if d.pool == nil {
		d.pool = newDecodePool(d.workers - 1)
		// Backstop for decoders dropped without Close: once the decoder is
		// unreachable (between regions the pool holds no reference to it),
		// stop its helpers so they do not leak for the process lifetime.
		// Sessions create a decoder per message, so this matters.
		runtime.AddCleanup(d, func(p *decodePool) { p.close() }, d.pool)
	}
	if d.shardBody == nil {
		d.shardBody = d.runShard // one closure for the decoder's lifetime
	}
	region.chunk = (region.units + w - 1) / w
	d.region = region
	d.pool.dispatch(w, d.shardBody)
	d.region = parRegion{} // do not pin the observation container between attempts
	for i := 0; i < w; i++ {
		sh := &d.par[i]
		for _, n := range sh.sel.items() {
			d.ws.sel.offer(n)
		}
		d.nodesExpanded += sh.expanded
		d.nodesRefreshed += sh.refreshed
	}
}

// runShard is the body every worker executes: carve this shard's chunk out
// of the region and run the matching range expansion into the shard-private
// selector and counters.
func (d *BeamDecoder) runShard(shard int) {
	rg := &d.region
	sh := &d.par[shard]
	sh.sel.reset(rg.keep)
	sh.expanded, sh.refreshed = 0, 0
	lo := shard * rg.chunk
	hi := lo + rg.chunk
	if lo > rg.units {
		lo = rg.units
	}
	if hi > rg.units {
		hi = rg.units
	}
	switch rg.kind {
	case regionRefresh:
		sh.refreshed = d.refreshRange(rg.coster, rg.lv, rg.parent, rg.t, rg.nObs, lo, hi, &sh.sel)
	case regionRebuild:
		sh.expanded, sh.refreshed = d.rebuildRange(rg.coster, rg.lv, rg.parent, rg.t, rg.nObs, rg.nSeg, rg.reuse, lo, hi, rg.out, &sh.sel)
	case regionStream:
		sh.expanded = d.streamRange(rg.coster, rg.parent, rg.t, rg.nSeg, lo, hi, &sh.sel)
	}
}

// decodePool owns the helper goroutines of one decoder. Helper i (1-based;
// the decoder's own goroutine is worker 0) blocks on a private empty-struct
// channel, so worker identities — and therefore shard workspaces — are
// stable across regions and dispatching allocates nothing. Between regions
// the pool holds no reference to the decoder (body is cleared), which lets a
// runtime cleanup on the decoder reclaim abandoned pools.
type decodePool struct {
	helpers []chan struct{}
	body    func(worker int)
	wg      sync.WaitGroup
	once    sync.Once
}

func newDecodePool(helpers int) *decodePool {
	p := &decodePool{helpers: make([]chan struct{}, helpers)}
	for i := range p.helpers {
		ch := make(chan struct{})
		p.helpers[i] = ch
		id := i + 1
		go func() {
			for range ch {
				p.body(id)
				p.wg.Done()
			}
		}()
	}
	return p
}

// dispatch runs body on workers 0..w-1 — the caller is worker 0 — and
// returns when all have finished. The channel sends publish p.body to the
// helpers; wg.Wait orders their completion before body is cleared.
func (p *decodePool) dispatch(w int, body func(worker int)) {
	p.body = body
	p.wg.Add(w - 1)
	for i := 1; i < w; i++ {
		p.helpers[i-1] <- struct{}{}
	}
	body(0)
	p.wg.Wait()
	p.body = nil
}

// close stops the helper goroutines. Safe to call more than once; must not
// race with dispatch (a decoder is single-consumer by contract).
func (p *decodePool) close() {
	p.once.Do(func() {
		for _, ch := range p.helpers {
			close(ch)
		}
	})
}
