package core

import (
	"runtime"
	"sync"
)

// This file is the decoder's worker pool: a set of helper goroutines owned by
// one BeamDecoder and shared by its per-metric engines, which shard each
// level expansion across them (see engine.runRegion). The dispatch path
// allocates nothing at steady state: the region descriptor is an engine field
// rather than a closure, the helpers are signalled over empty-struct
// channels, and the WaitGroup is pooled. That keeps per-symbol decode
// attempts — the link receiver's hot loop — free of GC pressure.
//
// Correctness of sharding rests on the selector's strict total order (see
// candLess): the keep-smallest set of a level is unique, every shard retains
// the keep-smallest subset of its own chunk, and the keep-smallest of the
// union of those subsets equals the keep-smallest of the whole level. Each
// child's cost is computed by exactly the same floating-point operations
// regardless of which shard computes it, so parallel decodes are
// bit-identical to serial ones — same messages, same costs, same node
// accounting — at any worker count.

// minParallelChildren is the smallest level expansion worth sharding; below
// it the dispatch overhead exceeds the expansion work. It is a variable only
// so the determinism tests can force the sharded path on small trees.
var minParallelChildren = 1024

// minShardChildren is the smallest chunk a single shard should receive; the
// effective worker count is capped so no shard gets less. Variable for the
// same testing reason.
var minShardChildren = 256

// SetParallelism sets the number of worker goroutines used to expand each
// level of the decoding tree. Values <= 0 select runtime.GOMAXPROCS(0), the
// default; 1 restores the exact single-threaded path. Results are
// bit-identical at any setting — parallelism changes wall-clock time, never
// the decode.
func (d *BeamDecoder) SetParallelism(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n == d.workers {
		return
	}
	d.workers = n
	d.releasePool()
}

// Parallelism reports the configured worker count.
func (d *BeamDecoder) Parallelism() int { return d.workers }

// Close stops the decoder's worker goroutines. The decoder remains usable —
// a later parallel Decode lazily recreates the pool — so Close is purely a
// way to release the helper goroutines promptly instead of waiting for the
// garbage collector's cleanup to do it.
func (d *BeamDecoder) Close() {
	d.releasePool()
}

func (d *BeamDecoder) releasePool() {
	if d.pool != nil {
		d.pool.close()
		d.pool = nil
	}
}

// ensurePool lazily creates the worker pool the engines dispatch regions on.
func (d *BeamDecoder) ensurePool() {
	if d.pool != nil {
		return
	}
	d.pool = newDecodePool(d.workers - 1)
	// Backstop for decoders dropped without Close: once the decoder is
	// unreachable (between regions the pool holds no reference to it), stop
	// its helpers so they do not leak for the process lifetime. Sessions
	// create a decoder per message, so this matters.
	runtime.AddCleanup(d, func(p *decodePool) { p.close() }, d.pool)
}

// workersFor decides how many shards to split `children` work units across:
// the configured parallelism, capped so every shard receives a meaningful
// chunk, and 1 when the level is too small to be worth dispatching.
func (d *BeamDecoder) workersFor(children int) int {
	w := d.workers
	if w <= 1 || children < minParallelChildren {
		return 1
	}
	if maxW := children / minShardChildren; w > maxW {
		w = maxW
	}
	if w <= 1 {
		return 1
	}
	return w
}

// decodePool owns the helper goroutines of one decoder. Helper i (1-based;
// the decoder's own goroutine is worker 0) blocks on a private empty-struct
// channel, so worker identities — and therefore shard workspaces — are
// stable across regions and dispatching allocates nothing. Between regions
// the pool holds no reference to the decoder (body is cleared), which lets a
// runtime cleanup on the decoder reclaim abandoned pools.
type decodePool struct {
	helpers []chan struct{}
	body    func(worker int)
	wg      sync.WaitGroup
	once    sync.Once
}

func newDecodePool(helpers int) *decodePool {
	p := &decodePool{helpers: make([]chan struct{}, helpers)}
	for i := range p.helpers {
		ch := make(chan struct{})
		p.helpers[i] = ch
		id := i + 1
		go func() {
			for range ch {
				p.body(id)
				p.wg.Done()
			}
		}()
	}
	return p
}

// dispatch runs body on workers 0..w-1 — the caller is worker 0 — and
// returns when all have finished. The channel sends publish p.body to the
// helpers; wg.Wait orders their completion before body is cleared.
func (p *decodePool) dispatch(w int, body func(worker int)) {
	p.body = body
	p.wg.Add(w - 1)
	for i := 1; i < w; i++ {
		p.helpers[i-1] <- struct{}{}
	}
	body(0)
	p.wg.Wait()
	p.body = nil
}

// close stops the helper goroutines. Safe to call more than once; must not
// race with dispatch (a decoder is single-consumer by contract).
func (p *decodePool) close() {
	p.once.Do(func() {
		for _, ch := range p.helpers {
			close(ch)
		}
	})
}
