package core

import (
	"testing"

	"spinal/internal/channel"
	"spinal/internal/rng"
)

// Tests for the incremental decode pipeline: interleaved Observe/Decode
// sequences must produce byte-identical messages and identical costs to a
// fresh from-scratch decode at every attempt point, across channel kinds and
// schedules, while expanding strictly fewer nodes in total.

// incrementalCase is one interleaving scenario.
type incrementalCase struct {
	name    string
	params  Params
	striped bool
	// attemptEvery is the number of symbols between decode attempts (1 =
	// every symbol); varying it exercises multi-observation refreshes.
	attemptEvery int
	passes       int
}

func incrementalCases() []incrementalCase {
	return []incrementalCase{
		{name: "sequential/every-symbol", params: Params{K: 4, C: 8, MessageBits: 24, Seed: 101}, attemptEvery: 1, passes: 6},
		{name: "sequential/every-3", params: Params{K: 4, C: 8, MessageBits: 24, Seed: 102}, attemptEvery: 3, passes: 6},
		{name: "striped/every-symbol", params: Params{K: 4, C: 8, MessageBits: 26, Seed: 103}, striped: true, attemptEvery: 1, passes: 6},
		{name: "striped/every-5", params: Params{K: 6, C: 8, MessageBits: 30, Seed: 104}, striped: true, attemptEvery: 5, passes: 8},
	}
}

func caseSchedule(t *testing.T, tc incrementalCase) Schedule {
	t.Helper()
	nseg := tc.params.NumSegments()
	var sched Schedule
	var err error
	if tc.striped {
		sched, err = NewStripedSchedule(nseg, 4)
	} else {
		sched, err = NewSequentialSchedule(nseg)
	}
	if err != nil {
		t.Fatal(err)
	}
	return sched
}

// TestIncrementalMatchesFromScratchAWGN interleaves Observe and Decode over
// an AWGN channel and checks every attempt against a from-scratch decode.
func TestIncrementalMatchesFromScratchAWGN(t *testing.T) {
	for _, tc := range incrementalCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			p := tc.params
			sched := caseSchedule(t, tc)
			msg := RandomMessage(rng.New(p.Seed^0xf00d), p.MessageBits)
			enc, err := NewEncoder(p, msg)
			if err != nil {
				t.Fatal(err)
			}
			ch, err := channel.NewAWGNdB(6, rng.New(p.Seed^0xbeef))
			if err != nil {
				t.Fatal(err)
			}

			inc, err := NewBeamDecoder(p, 8)
			if err != nil {
				t.Fatal(err)
			}
			obs, err := NewObservations(p.NumSegments())
			if err != nil {
				t.Fatal(err)
			}

			var incNodes, scratchNodes int
			attempts := 0
			total := tc.passes * p.NumSegments()
			for i := 0; i < total; i++ {
				pos := sched.Pos(i)
				if err := obs.Add(pos, ch.Corrupt(enc.SymbolAt(pos))); err != nil {
					t.Fatal(err)
				}
				if (i+1)%tc.attemptEvery != 0 {
					continue
				}
				got, err := inc.Decode(obs)
				if err != nil {
					t.Fatal(err)
				}
				// A fresh decoder with an empty workspace is the from-scratch
				// baseline for the exact same observations.
				fresh, err := NewBeamDecoder(p, 8)
				if err != nil {
					t.Fatal(err)
				}
				want, err := fresh.Decode(obs)
				if err != nil {
					t.Fatal(err)
				}
				if !EqualMessages(got.Message, want.Message, p.MessageBits) {
					t.Fatalf("attempt at %d symbols: incremental message %x differs from from-scratch %x",
						i+1, got.Message, want.Message)
				}
				if got.Cost != want.Cost {
					t.Fatalf("attempt at %d symbols: incremental cost %v differs from from-scratch %v",
						i+1, got.Cost, want.Cost)
				}
				incNodes += got.NodesExpanded
				scratchNodes += want.NodesExpanded
				attempts++
			}
			if attempts < 2 {
				t.Fatal("scenario exercised fewer than two attempts")
			}
			if incNodes >= scratchNodes {
				t.Fatalf("incremental expanded %d nodes, from-scratch %d: no savings", incNodes, scratchNodes)
			}
		})
	}
}

// TestIncrementalMatchesFromScratchBSC is the binary-channel counterpart.
func TestIncrementalMatchesFromScratchBSC(t *testing.T) {
	for _, tc := range incrementalCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			p := tc.params
			sched := caseSchedule(t, tc)
			msg := RandomMessage(rng.New(p.Seed^0xabcd), p.MessageBits)
			enc, err := NewEncoder(p, msg)
			if err != nil {
				t.Fatal(err)
			}
			bsc, err := channel.NewBSC(0.08, rng.New(p.Seed^0x1234))
			if err != nil {
				t.Fatal(err)
			}

			inc, err := NewBeamDecoder(p, 8)
			if err != nil {
				t.Fatal(err)
			}
			obs, err := NewBitObservations(p.NumSegments())
			if err != nil {
				t.Fatal(err)
			}

			var incNodes, scratchNodes int
			total := (tc.passes + 6) * p.NumSegments() // bits carry less, give more passes
			for i := 0; i < total; i++ {
				pos := sched.Pos(i)
				if err := obs.Add(pos, bsc.CorruptBit(enc.CodedBit(pos.Spine, pos.Pass))); err != nil {
					t.Fatal(err)
				}
				if (i+1)%tc.attemptEvery != 0 {
					continue
				}
				got, err := inc.DecodeBits(obs)
				if err != nil {
					t.Fatal(err)
				}
				fresh, err := NewBeamDecoder(p, 8)
				if err != nil {
					t.Fatal(err)
				}
				want, err := fresh.DecodeBits(obs)
				if err != nil {
					t.Fatal(err)
				}
				if !EqualMessages(got.Message, want.Message, p.MessageBits) {
					t.Fatalf("attempt at %d bits: incremental message %x differs from from-scratch %x",
						i+1, got.Message, want.Message)
				}
				if got.Cost != want.Cost {
					t.Fatalf("attempt at %d bits: incremental cost %v differs from from-scratch %v",
						i+1, got.Cost, want.Cost)
				}
				incNodes += got.NodesExpanded
				scratchNodes += want.NodesExpanded
			}
			if incNodes >= scratchNodes {
				t.Fatalf("incremental expanded %d nodes, from-scratch %d: no savings", incNodes, scratchNodes)
			}
		})
	}
}

// TestIncrementalUnchangedObservationsIsCacheHit checks that re-decoding an
// unchanged container does no tree work and returns the identical result.
func TestIncrementalUnchangedObservationsIsCacheHit(t *testing.T) {
	p := DefaultParams()
	msg := testMessage(91, p.MessageBits)
	e, err := NewEncoder(p, msg)
	if err != nil {
		t.Fatal(err)
	}
	obs := observeNoiseless(t, e, 2)
	dec, err := NewBeamDecoder(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	first, err := dec.Decode(obs)
	if err != nil {
		t.Fatal(err)
	}
	if first.NodesExpanded == 0 {
		t.Fatal("first decode reported no work")
	}
	second, err := dec.Decode(obs)
	if err != nil {
		t.Fatal(err)
	}
	if second.NodesExpanded != 0 || second.NodesRefreshed != 0 {
		t.Fatalf("unchanged re-decode did work: %d expanded, %d refreshed",
			second.NodesExpanded, second.NodesRefreshed)
	}
	if !EqualMessages(first.Message, second.Message, p.MessageBits) || first.Cost != second.Cost {
		t.Fatal("cache-hit decode returned a different result")
	}
}

// TestIncrementalSurvivesReset checks that Reset marks everything dirty so a
// reused decoder re-runs from the root for a new message.
func TestIncrementalSurvivesReset(t *testing.T) {
	p := DefaultParams()
	dec, err := NewBeamDecoder(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	obs, err := NewObservations(p.NumSegments())
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		msg := testMessage(uint64(200+round), p.MessageBits)
		e, err := NewEncoder(p, msg)
		if err != nil {
			t.Fatal(err)
		}
		obs.Reset()
		for pass := 0; pass < 2; pass++ {
			for s := 0; s < e.NumSegments(); s++ {
				if err := obs.Add(SymbolPos{Spine: s, Pass: pass}, e.Symbol(s, pass)); err != nil {
					t.Fatal(err)
				}
			}
		}
		out, err := dec.Decode(obs)
		if err != nil {
			t.Fatal(err)
		}
		if !EqualMessages(out.Message, msg, p.MessageBits) {
			t.Fatalf("round %d: reused decoder failed after Reset", round)
		}
	}
}

// TestIncrementalSwitchingContainersFallsBack checks that decoding a
// different observation container resets the workspace rather than reusing
// stale state.
func TestIncrementalSwitchingContainersFallsBack(t *testing.T) {
	p := Params{K: 4, C: 8, MessageBits: 16, Seed: 55}
	msgA := testMessage(1, p.MessageBits)
	msgB := testMessage(2, p.MessageBits)
	encA, _ := NewEncoder(p, msgA)
	encB, _ := NewEncoder(p, msgB)
	obsA := observeNoiseless(t, encA, 2)
	obsB := observeNoiseless(t, encB, 2)
	dec, err := NewBeamDecoder(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		outA, err := dec.Decode(obsA)
		if err != nil {
			t.Fatal(err)
		}
		if !EqualMessages(outA.Message, msgA, p.MessageBits) {
			t.Fatal("decode of container A wrong after switching")
		}
		outB, err := dec.Decode(obsB)
		if err != nil {
			t.Fatal(err)
		}
		if !EqualMessages(outB.Message, msgB, p.MessageBits) {
			t.Fatal("decode of container B wrong after switching")
		}
	}
}

// TestIncrementalTwoDecodersOneContainer checks that two decoders
// interleaving attempts on one observation container — a misuse of the
// single-consumer dirty tracking — still decode correctly: each decoder's
// workspace detects the other's MarkClean through the watermark and falls
// back to a full decode instead of trusting a dirty level that no longer
// covers its own unseen changes.
func TestIncrementalTwoDecodersOneContainer(t *testing.T) {
	p := Params{K: 4, C: 8, MessageBits: 24, Seed: 77}
	msg := RandomMessage(rng.New(7), p.MessageBits)
	enc, err := NewEncoder(p, msg)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := channel.NewAWGNdB(8, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := NewBeamDecoder(p, 8)
	b, _ := NewBeamDecoder(p, 8)
	obs, err := NewObservations(p.NumSegments())
	if err != nil {
		t.Fatal(err)
	}
	sched, err := NewSequentialSchedule(p.NumSegments())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6*p.NumSegments(); i++ {
		pos := sched.Pos(i)
		if err := obs.Add(pos, ch.Corrupt(enc.SymbolAt(pos))); err != nil {
			t.Fatal(err)
		}
		// Alternate consumers; verify each against a fresh from-scratch
		// decode of the same container.
		dec := a
		if i%2 == 1 {
			dec = b
		}
		got, err := dec.Decode(obs)
		if err != nil {
			t.Fatal(err)
		}
		fresh, _ := NewBeamDecoder(p, 8)
		want, err := fresh.Decode(obs)
		if err != nil {
			t.Fatal(err)
		}
		if !EqualMessages(got.Message, want.Message, p.MessageBits) || got.Cost != want.Cost {
			t.Fatalf("symbol %d: interleaved consumers diverged from from-scratch decode", i+1)
		}
	}
}

// TestIncrementalDirtyTracking checks the observation container's dirty
// bookkeeping directly.
func TestIncrementalDirtyTracking(t *testing.T) {
	obs, err := NewObservations(4)
	if err != nil {
		t.Fatal(err)
	}
	if obs.DirtyLevel() != 0 {
		t.Fatalf("fresh container dirty level = %d, want 0", obs.DirtyLevel())
	}
	obs.MarkClean()
	if obs.DirtyLevel() != 4 {
		t.Fatalf("clean container dirty level = %d, want 4", obs.DirtyLevel())
	}
	gen := obs.Generation()
	if err := obs.Add(SymbolPos{Spine: 2, Pass: 0}, 1); err != nil {
		t.Fatal(err)
	}
	if obs.DirtyLevel() != 2 || obs.Generation() == gen {
		t.Fatalf("after add at spine 2: dirty=%d gen moved=%v", obs.DirtyLevel(), obs.Generation() != gen)
	}
	if err := obs.Add(SymbolPos{Spine: 1, Pass: 0}, 1); err != nil {
		t.Fatal(err)
	}
	if err := obs.Add(SymbolPos{Spine: 3, Pass: 0}, 1); err != nil {
		t.Fatal(err)
	}
	if obs.DirtyLevel() != 1 {
		t.Fatalf("dirty level = %d, want the minimum touched level 1", obs.DirtyLevel())
	}
	obs.Reset()
	if obs.DirtyLevel() != 0 {
		t.Fatal("Reset must mark everything dirty")
	}

	bits, err := NewBitObservations(3)
	if err != nil {
		t.Fatal(err)
	}
	bits.MarkClean()
	if err := bits.Add(SymbolPos{Spine: 1, Pass: 0}, 1); err != nil {
		t.Fatal(err)
	}
	if bits.DirtyLevel() != 1 {
		t.Fatalf("bit dirty level = %d, want 1", bits.DirtyLevel())
	}
}
