package core

import (
	"fmt"

	"spinal/internal/rng"
)

// Messages are byte slices holding MessageBits bits packed LSB-first: message
// bit i (0-based) is bit (i%8) of byte i/8. Unused high bits of the final
// byte must be zero; EncodeMessage and the decoder maintain this invariant.

// MessageBytes returns the number of bytes needed to hold n message bits.
func MessageBytes(n int) int { return (n + 7) / 8 }

// RandomMessage draws a uniformly random message of n bits using the given
// deterministic source.
func RandomMessage(src *rng.Rand, n int) []byte {
	return src.Bits(n)
}

// messageBit returns bit i of the packed message.
func messageBit(msg []byte, i int) byte {
	return msg[i/8] >> uint(i%8) & 1
}

// segmentOf extracts segment t of the message under parameters p, returned in
// the low SegmentBits(t) bits of a uint64 (message bit t*K+j is bit j).
func segmentOf(p Params, msg []byte, t int) uint64 {
	bits := p.SegmentBits(t)
	var seg uint64
	base := t * p.K
	for j := 0; j < bits; j++ {
		seg |= uint64(messageBit(msg, base+j)) << uint(j)
	}
	return seg
}

// packSegments assembles a packed message from per-segment values, inverting
// segmentOf.
func packSegments(p Params, segs []uint64) []byte {
	msg := make([]byte, MessageBytes(p.MessageBits))
	for t, seg := range segs {
		bits := p.SegmentBits(t)
		base := t * p.K
		for j := 0; j < bits; j++ {
			if seg>>uint(j)&1 == 1 {
				msg[(base+j)/8] |= 1 << uint((base+j)%8)
			}
		}
	}
	return msg
}

// checkMessage validates that msg holds exactly p.MessageBits bits with the
// padding bits cleared.
func checkMessage(p Params, msg []byte) error {
	if len(msg) != MessageBytes(p.MessageBits) {
		return fmt.Errorf("core: message is %d bytes, want %d for %d bits",
			len(msg), MessageBytes(p.MessageBits), p.MessageBits)
	}
	if rem := p.MessageBits % 8; rem != 0 {
		if msg[len(msg)-1]>>uint(rem) != 0 {
			return fmt.Errorf("core: message has non-zero padding bits beyond bit %d", p.MessageBits)
		}
	}
	return nil
}

// EqualMessages reports whether two packed messages of n bits are identical.
func EqualMessages(a, b []byte, n int) bool {
	if len(a) != MessageBytes(n) || len(b) != MessageBytes(n) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// BitErrors counts the positions at which two packed n-bit messages differ.
func BitErrors(a, b []byte, n int) int {
	errs := 0
	for i := 0; i < n; i++ {
		if messageBit(a, i) != messageBit(b, i) {
			errs++
		}
	}
	return errs
}
