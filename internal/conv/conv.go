// Package conv implements the industry-standard constraint-length-7
// convolutional code (generators 133/171 octal, as used by 802.11a/g) with
// optional puncturing to rates 2/3 and 3/4, and a soft-decision Viterbi
// decoder. It serves as an additional fixed-rate baseline next to the LDPC
// codes when comparing against the rateless spinal code, and as the natural
// comparison point for the trellis-coded-modulation discussion in §2 of the
// paper.
package conv

import (
	"fmt"
	"math"
)

// Code is a punctured convolutional code derived from the rate-1/2,
// constraint-length-7 mother code.
type Code struct {
	constraint int
	gens       []uint32
	punct      []byte // puncture pattern over mother-coded bits, 1 = transmit
	name       string
}

// Standard generator polynomials (octal 133 and 171) for constraint length 7.
const (
	gen0 = 0o133
	gen1 = 0o171
)

// NewRate12 returns the unpunctured rate-1/2 code.
func NewRate12() *Code {
	return &Code{constraint: 7, gens: []uint32{gen0, gen1}, punct: []byte{1, 1}, name: "conv-1/2"}
}

// NewPunctured returns a punctured code at the named rate: "1/2", "2/3" or
// "3/4", using the standard 802.11 puncturing patterns.
func NewPunctured(rate string) (*Code, error) {
	base := NewRate12()
	switch rate {
	case "1/2":
		return base, nil
	case "2/3":
		base.punct = []byte{1, 1, 1, 0}
		base.name = "conv-2/3"
		return base, nil
	case "3/4":
		base.punct = []byte{1, 1, 1, 0, 0, 1}
		base.name = "conv-3/4"
		return base, nil
	default:
		return nil, fmt.Errorf("conv: unsupported rate %q", rate)
	}
}

// Name identifies the code in experiment output.
func (c *Code) Name() string { return c.name }

// tailBits is the number of zero bits appended to flush the encoder.
func (c *Code) tailBits() int { return c.constraint - 1 }

// RateValue returns the effective code rate for a frame of infoLen
// information bits, accounting for tail bits and puncturing.
func (c *Code) RateValue(infoLen int) float64 {
	return float64(infoLen) / float64(c.CodedLength(infoLen))
}

// motherLength returns the number of mother-code bits for infoLen information
// bits including the tail.
func (c *Code) motherLength(infoLen int) int {
	return 2 * (infoLen + c.tailBits())
}

// CodedLength returns the number of transmitted coded bits for a frame of
// infoLen information bits after puncturing.
func (c *Code) CodedLength(infoLen int) int {
	mother := c.motherLength(infoLen)
	full := mother / len(c.punct)
	kept := 0
	for _, p := range c.punct {
		if p == 1 {
			kept++
		}
	}
	n := full * kept
	for i := full * len(c.punct); i < mother; i++ {
		if c.punct[i%len(c.punct)] == 1 {
			n++
		}
	}
	return n
}

// parity returns the parity (XOR of bits) of x.
func parity(x uint32) byte {
	x ^= x >> 16
	x ^= x >> 8
	x ^= x >> 4
	x ^= x >> 2
	x ^= x >> 1
	return byte(x & 1)
}

// Encode convolutionally encodes the information bits (values 0/1), appends
// the flushing tail, and applies the puncturing pattern. The result is the
// stream of transmitted coded bits.
func (c *Code) Encode(info []byte) ([]byte, error) {
	for i, b := range info {
		if b != 0 && b != 1 {
			return nil, fmt.Errorf("conv: information bit %d has value %d", i, b)
		}
	}
	state := uint32(0)
	mother := make([]byte, 0, c.motherLength(len(info)))
	emit := func(bit byte) {
		state = state<<1 | uint32(bit)
		reg := state & ((1 << uint(c.constraint)) - 1)
		for _, g := range c.gens {
			mother = append(mother, parity(reg&g))
		}
	}
	for _, b := range info {
		emit(b)
	}
	for i := 0; i < c.tailBits(); i++ {
		emit(0)
	}
	// Puncture.
	out := make([]byte, 0, c.CodedLength(len(info)))
	for i, b := range mother {
		if c.punct[i%len(c.punct)] == 1 {
			out = append(out, b)
		}
	}
	return out, nil
}

// Decode runs soft-decision Viterbi decoding over the LLRs of the transmitted
// coded bits (positive favours 0) and returns the estimate of the infoLen
// information bits. The LLR slice must have exactly CodedLength(infoLen)
// entries.
func (c *Code) Decode(llr []float64, infoLen int) ([]byte, error) {
	if infoLen < 1 {
		return nil, fmt.Errorf("conv: non-positive frame length %d", infoLen)
	}
	if len(llr) != c.CodedLength(infoLen) {
		return nil, fmt.Errorf("conv: need %d LLRs for %d info bits, got %d",
			c.CodedLength(infoLen), infoLen, len(llr))
	}

	// Re-insert zero LLRs at punctured positions of the mother code.
	mother := make([]float64, c.motherLength(infoLen))
	src := 0
	for i := range mother {
		if c.punct[i%len(c.punct)] == 1 {
			mother[i] = llr[src]
			src++
		}
	}

	numStates := 1 << uint(c.constraint-1)
	steps := infoLen + c.tailBits()
	const inf = math.MaxFloat64 / 4

	metric := make([]float64, numStates)
	next := make([]float64, numStates)
	for s := 1; s < numStates; s++ {
		metric[s] = inf // encoding starts in the all-zero state
	}
	// survivors[t][state] = input bit leading into state at step t+1, plus the
	// predecessor state packed in the upper bits.
	survivors := make([][]int32, steps)

	stateMask := uint32(numStates - 1)
	for t := 0; t < steps; t++ {
		survivors[t] = make([]int32, numStates)
		for s := range next {
			next[s] = inf
		}
		// Branch costs for this step depend on the two mother LLRs.
		l0, l1 := mother[2*t], mother[2*t+1]
		for s := 0; s < numStates; s++ {
			if metric[s] >= inf {
				continue
			}
			maxIn := 2
			if t >= infoLen {
				maxIn = 1 // tail is known to be zero
			}
			for in := 0; in < maxIn; in++ {
				reg := uint32(s)<<1 | uint32(in)
				ns := int(reg & stateMask)
				var cost float64
				if parity(reg&gen0) == 1 {
					cost += l0
				} else {
					cost -= l0
				}
				if parity(reg&gen1) == 1 {
					cost += l1
				} else {
					cost -= l1
				}
				m := metric[s] + cost
				if m < next[ns] {
					next[ns] = m
					survivors[t][ns] = int32(s)<<1 | int32(in)
				}
			}
		}
		metric, next = next, metric
	}

	// Traceback from the all-zero state (guaranteed by the tail).
	decoded := make([]byte, infoLen)
	state := 0
	for t := steps - 1; t >= 0; t-- {
		packed := survivors[t][state]
		in := byte(packed & 1)
		prev := int(packed >> 1)
		if t < infoLen {
			decoded[t] = in
		}
		state = prev
	}
	return decoded, nil
}

// HardLLR converts hard bits (0/1) into large-magnitude LLRs, for use when
// only hard decisions are available.
func HardLLR(bits []byte, magnitude float64) []float64 {
	out := make([]float64, len(bits))
	for i, b := range bits {
		if b == 0 {
			out[i] = magnitude
		} else {
			out[i] = -magnitude
		}
	}
	return out
}
