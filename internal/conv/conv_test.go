package conv

import (
	"testing"
	"testing/quick"

	"spinal/internal/channel"
	"spinal/internal/modem"
	"spinal/internal/rng"
)

func randomBits(src *rng.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(src.Intn(2))
	}
	return b
}

func TestEncodeLengths(t *testing.T) {
	r12 := NewRate12()
	info := make([]byte, 100)
	coded, err := r12.Encode(info)
	if err != nil {
		t.Fatal(err)
	}
	if len(coded) != 2*(100+6) {
		t.Fatalf("rate 1/2 coded length = %d, want 212", len(coded))
	}
	if len(coded) != r12.CodedLength(100) {
		t.Fatal("CodedLength disagrees with Encode")
	}

	r34, err := NewPunctured("3/4")
	if err != nil {
		t.Fatal(err)
	}
	coded34, _ := r34.Encode(info)
	if len(coded34) != r34.CodedLength(100) {
		t.Fatalf("punctured coded length %d does not match CodedLength %d",
			len(coded34), r34.CodedLength(100))
	}
	// 3/4 puncturing keeps 4 of every 6 mother bits.
	if want := (2 * 106 * 4) / 6; abs(len(coded34)-want) > 2 {
		t.Fatalf("3/4 coded length = %d, want about %d", len(coded34), want)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestRateValue(t *testing.T) {
	r12 := NewRate12()
	if r := r12.RateValue(1000); r < 0.49 || r > 0.5 {
		t.Fatalf("rate 1/2 effective rate = %v", r)
	}
	r34, _ := NewPunctured("3/4")
	if r := r34.RateValue(1000); r < 0.73 || r > 0.76 {
		t.Fatalf("rate 3/4 effective rate = %v", r)
	}
}

func TestUnsupportedRate(t *testing.T) {
	if _, err := NewPunctured("7/8"); err == nil {
		t.Error("unsupported rate accepted")
	}
	if _, err := NewPunctured("1/2"); err != nil {
		t.Error("rate 1/2 should be supported")
	}
}

func TestEncodeRejectsNonBits(t *testing.T) {
	r12 := NewRate12()
	if _, err := r12.Encode([]byte{0, 1, 2}); err == nil {
		t.Error("non-bit input accepted")
	}
}

func TestNoiselessRoundTripAllRates(t *testing.T) {
	src := rng.New(1)
	for _, rate := range []string{"1/2", "2/3", "3/4"} {
		c, err := NewPunctured(rate)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 5; trial++ {
			info := randomBits(src, 120)
			coded, err := c.Encode(info)
			if err != nil {
				t.Fatal(err)
			}
			dec, err := c.Decode(HardLLR(coded, 5), len(info))
			if err != nil {
				t.Fatal(err)
			}
			for i := range info {
				if dec[i] != info[i] {
					t.Fatalf("rate %s: noiseless round trip wrong at bit %d", rate, i)
				}
			}
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	c := NewRate12()
	prop := func(seed uint64, lenRaw uint8) bool {
		n := int(lenRaw%64) + 8
		info := randomBits(rng.New(seed), n)
		coded, err := c.Encode(info)
		if err != nil {
			return false
		}
		dec, err := c.Decode(HardLLR(coded, 4), n)
		if err != nil {
			return false
		}
		for i := range info {
			if dec[i] != info[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestViterbiCorrectsErrors(t *testing.T) {
	// Rate 1/2 over BPSK at 4 dB: the K=7 code should decode cleanly.
	c := NewRate12()
	mod := modem.NewBPSK()
	src := rng.New(3)
	ch, _ := channel.NewAWGNdB(4, src)
	bsrc := rng.New(4)
	for trial := 0; trial < 10; trial++ {
		info := randomBits(bsrc, 200)
		coded, _ := c.Encode(info)
		syms, err := mod.Modulate(coded)
		if err != nil {
			t.Fatal(err)
		}
		ch.CorruptBlock(syms, syms)
		llr := mod.Demodulate(syms, ch.Sigma2())
		dec, err := c.Decode(llr, len(info))
		if err != nil {
			t.Fatal(err)
		}
		errs := 0
		for i := range info {
			if dec[i] != info[i] {
				errs++
			}
		}
		if errs != 0 {
			t.Fatalf("trial %d: %d bit errors at 4 dB", trial, errs)
		}
	}
}

func TestViterbiDegradesGracefully(t *testing.T) {
	// At -4 dB the rate-1/2 code is below threshold: expect a substantial
	// bit error rate, but the decoder must still return a full-length guess.
	c := NewRate12()
	mod := modem.NewBPSK()
	src := rng.New(5)
	ch, _ := channel.NewAWGNdB(-4, src)
	info := randomBits(rng.New(6), 500)
	coded, _ := c.Encode(info)
	syms, _ := mod.Modulate(coded)
	ch.CorruptBlock(syms, syms)
	llr := mod.Demodulate(syms, ch.Sigma2())
	dec, err := c.Decode(llr, len(info))
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(info) {
		t.Fatalf("decoded length %d", len(dec))
	}
	errs := 0
	for i := range info {
		if dec[i] != info[i] {
			errs++
		}
	}
	if errs == 0 {
		t.Fatal("zero errors at -4 dB is implausible; decoder may be cheating")
	}
}

func TestDecodeInputValidation(t *testing.T) {
	c := NewRate12()
	if _, err := c.Decode(make([]float64, 10), 100); err == nil {
		t.Error("wrong LLR count accepted")
	}
	if _, err := c.Decode(nil, 0); err == nil {
		t.Error("zero-length frame accepted")
	}
}

func TestParity(t *testing.T) {
	cases := map[uint32]byte{0: 0, 1: 1, 3: 0, 7: 1, 0b1011011: 1, 0xFFFFFFFF: 0}
	for x, want := range cases {
		if got := parity(x); got != want {
			t.Errorf("parity(%b) = %d, want %d", x, got, want)
		}
	}
}

func BenchmarkViterbiRate12(b *testing.B) {
	c := NewRate12()
	info := randomBits(rng.New(1), 648)
	coded, _ := c.Encode(info)
	llr := HardLLR(coded, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(llr, len(info)); err != nil {
			b.Fatal(err)
		}
	}
}
