package modem

import (
	"math"
	"testing"
	"testing/quick"

	"spinal/internal/channel"
	"spinal/internal/rng"
)

func allModulations(t *testing.T) []Modulation {
	t.Helper()
	mods := []Modulation{NewBPSK()}
	for _, pts := range []int{4, 16, 64, 256} {
		m, err := NewQAM(pts)
		if err != nil {
			t.Fatal(err)
		}
		mods = append(mods, m)
	}
	return mods
}

func TestUnitEnergy(t *testing.T) {
	for _, m := range allModulations(t) {
		e, err := AverageEnergy(m)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(e-1) > 1e-9 {
			t.Errorf("%s average energy = %v, want 1", m.Name(), e)
		}
	}
}

func TestBitsPerSymbol(t *testing.T) {
	want := map[string]int{"BPSK": 1, "QAM-4": 2, "QAM-16": 4, "QAM-64": 6, "QAM-256": 8}
	for _, m := range allModulations(t) {
		if got := m.BitsPerSymbol(); got != want[m.Name()] {
			t.Errorf("%s BitsPerSymbol = %d, want %d", m.Name(), got, want[m.Name()])
		}
	}
}

func TestModulateRejectsBadInput(t *testing.T) {
	q16, _ := NewQAM(16)
	if _, err := q16.Modulate([]byte{0, 1, 1}); err == nil {
		t.Error("non-multiple bit count accepted")
	}
	if _, err := q16.Modulate([]byte{0, 1, 2, 0}); err == nil {
		t.Error("non-bit value accepted")
	}
	if _, err := NewBPSK().Modulate([]byte{3}); err == nil {
		t.Error("BPSK non-bit value accepted")
	}
	if _, err := NewQAM(8); err == nil {
		t.Error("unsupported QAM size accepted")
	}
}

func TestGrayNeighbours(t *testing.T) {
	// In a Gray-mapped QAM-16, adjacent amplitude levels must differ in
	// exactly one bit of the per-dimension label.
	q, _ := NewQAM(16)
	g := q.(*grayQAM)
	// Build amplitude -> gray label map.
	type lv struct {
		amp  float64
		gray int
	}
	var lvs []lv
	for gray := 0; gray < 4; gray++ {
		lvs = append(lvs, lv{amp: g.levels[grayDecode(gray)], gray: gray})
	}
	for i := 0; i < len(lvs); i++ {
		for j := 0; j < len(lvs); j++ {
			if i == j {
				continue
			}
			// Adjacent levels are separated by the minimum spacing.
			if math.Abs(math.Abs(lvs[i].amp-lvs[j].amp)-2*math.Sqrt(3.0/30)) < 1e-9 {
				diff := lvs[i].gray ^ lvs[j].gray
				if diff&(diff-1) != 0 {
					t.Fatalf("adjacent levels %v and %v differ in more than one bit", lvs[i], lvs[j])
				}
			}
		}
	}
}

func TestHardDecisionRoundTripNoiseless(t *testing.T) {
	// With no noise, the sign of every LLR must reproduce the transmitted bit.
	src := rng.New(1)
	for _, m := range allModulations(t) {
		bps := m.BitsPerSymbol()
		bits := make([]byte, bps*64)
		for i := range bits {
			bits[i] = byte(src.Intn(2))
		}
		syms, err := m.Modulate(bits)
		if err != nil {
			t.Fatal(err)
		}
		llr := m.Demodulate(syms, 0.01)
		if len(llr) != len(bits) {
			t.Fatalf("%s: LLR count %d, want %d", m.Name(), len(llr), len(bits))
		}
		for i := range bits {
			hard := byte(0)
			if llr[i] < 0 {
				hard = 1
			}
			if hard != bits[i] {
				t.Fatalf("%s: bit %d flips without noise (llr=%v)", m.Name(), i, llr[i])
			}
		}
	}
}

func TestDemodulateUnderModerateNoise(t *testing.T) {
	// At an SNR comfortably above the modulation's need, hard decisions from
	// LLRs should be nearly error free.
	cases := []struct {
		name  string
		snrDB float64
	}{
		{"BPSK", 10}, {"QAM-4", 13}, {"QAM-16", 20}, {"QAM-64", 26},
	}
	for _, c := range cases {
		m, err := ByName(c.name)
		if err != nil {
			t.Fatal(err)
		}
		src := rng.New(42)
		ch, _ := channel.NewAWGNdB(c.snrDB, src)
		bits := make([]byte, m.BitsPerSymbol()*500)
		bsrc := rng.New(7)
		for i := range bits {
			bits[i] = byte(bsrc.Intn(2))
		}
		syms, _ := m.Modulate(bits)
		rx := make([]complex128, len(syms))
		ch.CorruptBlock(rx, syms)
		llr := m.Demodulate(rx, ch.Sigma2())
		errs := 0
		for i := range bits {
			hard := byte(0)
			if llr[i] < 0 {
				hard = 1
			}
			if hard != bits[i] {
				errs++
			}
		}
		if frac := float64(errs) / float64(len(bits)); frac > 0.01 {
			t.Errorf("%s at %.0f dB: hard-decision BER %v too high", c.name, c.snrDB, frac)
		}
	}
}

func TestLLRMagnitudeScalesWithSNR(t *testing.T) {
	m, _ := NewQAM(16)
	bits := []byte{0, 1, 1, 0}
	syms, _ := m.Modulate(bits)
	lowNoise := m.Demodulate(syms, 0.001)
	highNoise := m.Demodulate(syms, 0.5)
	for i := range bits {
		if math.Abs(lowNoise[i]) <= math.Abs(highNoise[i]) {
			t.Fatalf("LLR magnitude did not grow as noise shrank (bit %d)", i)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"BPSK", "QAM-4", "QAM-16", "QAM-64", "QPSK"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("QAM-1024"); err == nil {
		t.Error("unknown modulation accepted")
	}
}

func TestGrayDecodeInvertsGrayCode(t *testing.T) {
	prop := func(raw uint8) bool {
		b := int(raw)
		g := b ^ (b >> 1) // binary to Gray
		return grayDecode(g) == b
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 256}); err != nil {
		t.Fatal(err)
	}
}

func TestLogAdd(t *testing.T) {
	got := logAdd(math.Log(0.3), math.Log(0.2))
	if math.Abs(got-math.Log(0.5)) > 1e-12 {
		t.Fatalf("logAdd = %v, want log(0.5)", got)
	}
	if logAdd(math.Inf(-1), 2) != 2 || logAdd(2, math.Inf(-1)) != 2 {
		t.Fatal("logAdd with -Inf should return the other operand")
	}
}

func BenchmarkQAM64Demodulate(b *testing.B) {
	m, _ := NewQAM(64)
	bits := make([]byte, 648)
	syms, _ := m.Modulate(bits)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Demodulate(syms, 0.05)
	}
}
