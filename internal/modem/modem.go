// Package modem implements the conventional fixed modulations used by the
// Figure 2 baselines — BPSK, QPSK (QAM-4), QAM-16 and QAM-64 with Gray
// mapping — together with soft demapping to per-bit log-likelihood ratios for
// the LDPC belief-propagation decoder.
//
// All constellations are normalized to unit average symbol energy so that the
// same AWGN channel abstraction (SNR = 1/sigma^2 per complex symbol) is shared
// with the spinal code.
package modem

import (
	"fmt"
	"math"
)

// Modulation maps coded bits to unit-energy symbols and computes bit LLRs
// from noisy symbols. Bits are represented as bytes with value 0 or 1.
type Modulation interface {
	// BitsPerSymbol returns the number of coded bits carried per symbol.
	BitsPerSymbol() int
	// Modulate maps a bit slice (whose length must be a multiple of
	// BitsPerSymbol) to symbols.
	Modulate(bits []byte) ([]complex128, error)
	// Demodulate computes one LLR per coded bit given the received symbols
	// and the total complex noise variance sigma2. Positive LLR favours 0.
	Demodulate(symbols []complex128, sigma2 float64) []float64
	// Name identifies the modulation in experiment output.
	Name() string
}

// grayQAM is a square Gray-mapped QAM constellation with bitsPerDim bits on
// each of I and Q (so 2*bitsPerDim bits per symbol).
type grayQAM struct {
	bitsPerDim int
	name       string
	levels     []float64 // amplitude per Gray-decoded index, unit-energy normalized
}

// bpsk is binary phase shift keying: one bit per symbol on the I axis.
type bpsk struct{}

// NewBPSK returns a BPSK modulation (1 bit/symbol).
func NewBPSK() Modulation { return bpsk{} }

// NewQAM returns a Gray-mapped square QAM constellation with the given number
// of points (4, 16, 64 or 256).
func NewQAM(points int) (Modulation, error) {
	switch points {
	case 4, 16, 64, 256:
	default:
		return nil, fmt.Errorf("modem: unsupported QAM size %d", points)
	}
	bitsPerDim := 0
	for p := points; p > 1; p >>= 2 {
		bitsPerDim++
	}
	l := 1 << uint(bitsPerDim)
	// PAM levels -(L-1), ..., -1, +1, ..., +(L-1); per-dimension average
	// energy (L^2-1)/3, so total symbol energy 2(L^2-1)/3 before scaling.
	scale := math.Sqrt(3 / (2 * float64(l*l-1)))
	levels := make([]float64, l)
	for i := 0; i < l; i++ {
		levels[i] = float64(2*i-(l-1)) * scale
	}
	return &grayQAM{
		bitsPerDim: bitsPerDim,
		name:       fmt.Sprintf("QAM-%d", points),
		levels:     levels,
	}, nil
}

// ByName returns a modulation given its experiment-file name: "BPSK",
// "QAM-4", "QAM-16", "QAM-64" or "QAM-256".
func ByName(name string) (Modulation, error) {
	switch name {
	case "BPSK", "bpsk":
		return NewBPSK(), nil
	case "QPSK", "QAM-4", "qam4":
		return NewQAM(4)
	case "QAM-16", "qam16":
		return NewQAM(16)
	case "QAM-64", "qam64":
		return NewQAM(64)
	case "QAM-256", "qam256":
		return NewQAM(256)
	default:
		return nil, fmt.Errorf("modem: unknown modulation %q", name)
	}
}

func (bpsk) BitsPerSymbol() int { return 1 }
func (bpsk) Name() string       { return "BPSK" }

func (bpsk) Modulate(bits []byte) ([]complex128, error) {
	out := make([]complex128, len(bits))
	for i, b := range bits {
		switch b {
		case 0:
			out[i] = 1
		case 1:
			out[i] = -1
		default:
			return nil, fmt.Errorf("modem: bit value %d at index %d", b, i)
		}
	}
	return out, nil
}

func (bpsk) Demodulate(symbols []complex128, sigma2 float64) []float64 {
	// For BPSK only the I dimension carries information; its noise variance
	// is sigma2/2, so LLR = 4*Re(y)/sigma2 under the 0 -> +1 mapping.
	llr := make([]float64, len(symbols))
	for i, y := range symbols {
		llr[i] = 4 * real(y) / sigma2
	}
	return llr
}

func (m *grayQAM) BitsPerSymbol() int { return 2 * m.bitsPerDim }
func (m *grayQAM) Name() string       { return m.name }

// grayDecode converts a Gray-coded value to its binary index.
func grayDecode(g int) int {
	b := 0
	for ; g != 0; g >>= 1 {
		b ^= g
	}
	return b
}

// dimAmplitude maps bitsPerDim Gray-coded bits (MSB first in the slice) to a
// PAM amplitude.
func (m *grayQAM) dimAmplitude(bits []byte) float64 {
	g := 0
	for _, b := range bits {
		g = g<<1 | int(b)
	}
	return m.levels[grayDecode(g)]
}

func (m *grayQAM) Modulate(bits []byte) ([]complex128, error) {
	bps := m.BitsPerSymbol()
	if len(bits)%bps != 0 {
		return nil, fmt.Errorf("modem: %d bits is not a multiple of %d", len(bits), bps)
	}
	for i, b := range bits {
		if b != 0 && b != 1 {
			return nil, fmt.Errorf("modem: bit value %d at index %d", b, i)
		}
	}
	out := make([]complex128, len(bits)/bps)
	for s := range out {
		chunk := bits[s*bps : (s+1)*bps]
		i := m.dimAmplitude(chunk[:m.bitsPerDim])
		q := m.dimAmplitude(chunk[m.bitsPerDim:])
		out[s] = complex(i, q)
	}
	return out, nil
}

func (m *grayQAM) Demodulate(symbols []complex128, sigma2 float64) []float64 {
	bps := m.BitsPerSymbol()
	llr := make([]float64, len(symbols)*bps)
	// Per-dimension noise variance.
	nv := sigma2 / 2
	for s, y := range symbols {
		m.dimLLR(real(y), nv, llr[s*bps:s*bps+m.bitsPerDim])
		m.dimLLR(imag(y), nv, llr[s*bps+m.bitsPerDim:(s+1)*bps])
	}
	return llr
}

// dimLLR fills out[j] with the exact LLR of the j-th Gray bit of one PAM
// dimension given observation y and per-dimension noise variance nv, using a
// log-sum-exp over the PAM points.
func (m *grayQAM) dimLLR(y, nv float64, out []float64) {
	l := len(m.levels)
	// Log-likelihood of each Gray index.
	logp := make([]float64, l)
	for g := 0; g < l; g++ {
		d := y - m.levels[grayDecode(g)]
		logp[g] = -d * d / (2 * nv)
	}
	for j := 0; j < m.bitsPerDim; j++ {
		bitMask := 1 << uint(m.bitsPerDim-1-j)
		num := math.Inf(-1) // log-sum over points with bit j = 0
		den := math.Inf(-1) // log-sum over points with bit j = 1
		for g := 0; g < l; g++ {
			if g&bitMask == 0 {
				num = logAdd(num, logp[g])
			} else {
				den = logAdd(den, logp[g])
			}
		}
		out[j] = num - den
	}
}

// logAdd returns log(exp(a)+exp(b)) stably.
func logAdd(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	if a < b {
		a, b = b, a
	}
	return a + math.Log1p(math.Exp(b-a))
}

// AverageEnergy returns the mean symbol energy of the modulation under
// uniform input bits; correctly normalized modulations return 1. It is used
// by tests and experiment sanity checks.
func AverageEnergy(m Modulation) (float64, error) {
	bps := m.BitsPerSymbol()
	n := 1 << uint(bps)
	var e float64
	bits := make([]byte, bps)
	for v := 0; v < n; v++ {
		for j := 0; j < bps; j++ {
			bits[j] = byte(v >> uint(bps-1-j) & 1)
		}
		syms, err := m.Modulate(bits)
		if err != nil {
			return 0, err
		}
		e += real(syms[0])*real(syms[0]) + imag(syms[0])*imag(syms[0])
	}
	return e / float64(n), nil
}
