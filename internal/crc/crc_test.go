package crc

import (
	"hash/crc32"
	"testing"
	"testing/quick"
)

func TestChecksum32MatchesStdlib(t *testing.T) {
	// Our from-scratch CRC-32 must agree with the stdlib IEEE implementation,
	// which serves as a reference oracle.
	cases := [][]byte{
		nil,
		{},
		[]byte("a"),
		[]byte("123456789"),
		[]byte("The quick brown fox jumps over the lazy dog"),
		make([]byte, 1000),
	}
	for _, c := range cases {
		if got, want := Checksum32(c), crc32.ChecksumIEEE(c); got != want {
			t.Errorf("Checksum32(%q) = %08x, want %08x", c, got, want)
		}
	}
}

func TestChecksum32MatchesStdlibProperty(t *testing.T) {
	prop := func(data []byte) bool {
		return Checksum32(data) == crc32.ChecksumIEEE(data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestChecksum16KnownVector(t *testing.T) {
	// CRC-16/CCITT-FALSE of "123456789" is 0x29B1.
	if got := Checksum16([]byte("123456789")); got != 0x29B1 {
		t.Fatalf("Checksum16 = %04x, want 29b1", got)
	}
}

func TestChecksum8KnownVector(t *testing.T) {
	// CRC-8 (poly 0x07, init 0) of "123456789" is 0xF4.
	if got := Checksum8([]byte("123456789")); got != 0xF4 {
		t.Fatalf("Checksum8 = %02x, want f4", got)
	}
}

func TestChecksumsDetectSingleBitErrors(t *testing.T) {
	msg := []byte("spinal codes are rateless")
	c32 := Checksum32(msg)
	c16 := Checksum16(msg)
	c8 := Checksum8(msg)
	for i := 0; i < len(msg)*8; i++ {
		corrupted := append([]byte(nil), msg...)
		corrupted[i/8] ^= 1 << uint(i%8)
		if Checksum32(corrupted) == c32 {
			t.Fatalf("CRC-32 missed single-bit error at %d", i)
		}
		if Checksum16(corrupted) == c16 {
			t.Fatalf("CRC-16 missed single-bit error at %d", i)
		}
		if Checksum8(corrupted) == c8 {
			t.Fatalf("CRC-8 missed single-bit error at %d", i)
		}
	}
}

func TestAppendVerify32RoundTrip(t *testing.T) {
	prop := func(data []byte) bool {
		framed := Append32(append([]byte(nil), data...))
		payload, ok := Verify32(framed)
		if !ok || len(payload) != len(data) {
			return false
		}
		for i := range data {
			if payload[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestVerify32DetectsCorruption(t *testing.T) {
	framed := Append32([]byte("hello spinal"))
	for i := range framed {
		bad := append([]byte(nil), framed...)
		bad[i] ^= 0x40
		if _, ok := Verify32(bad); ok {
			t.Fatalf("Verify32 accepted corruption at byte %d", i)
		}
	}
}

func TestVerify32ShortBuffer(t *testing.T) {
	if _, ok := Verify32([]byte{1, 2, 3}); ok {
		t.Fatal("Verify32 accepted a buffer shorter than the CRC")
	}
	// A 4-byte buffer is an empty payload plus CRC; only the CRC of the empty
	// string should verify.
	if _, ok := Verify32(Append32(nil)); !ok {
		t.Fatal("Verify32 rejected CRC of the empty payload")
	}
}

func TestAppendVerify16RoundTrip(t *testing.T) {
	framed := Append16([]byte{0xde, 0xad, 0xbe, 0xef})
	payload, ok := Verify16(framed)
	if !ok || len(payload) != 4 {
		t.Fatal("Verify16 round trip failed")
	}
	bad := append([]byte(nil), framed...)
	bad[0] ^= 1
	if _, ok := Verify16(bad); ok {
		t.Fatal("Verify16 accepted corrupted payload")
	}
	if _, ok := Verify16([]byte{1}); ok {
		t.Fatal("Verify16 accepted short buffer")
	}
}

func BenchmarkChecksum32(b *testing.B) {
	data := make([]byte, 1500)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		Checksum32(data)
	}
}
