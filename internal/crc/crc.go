// Package crc implements the cyclic redundancy checks used by the rateless
// link protocol to let the receiver detect when a spinal decode attempt has
// produced the correct message (§3.2: "using a CRC at the end of each pass").
//
// Three generators are provided, all table-driven and implemented from
// scratch: CRC-8 (poly 0x07), CRC-16-CCITT (poly 0x1021) and CRC-32 (IEEE
// 802.3 poly, reflected form 0xEDB88320).
package crc

// Table8 is a precomputed table for CRC-8 with polynomial x^8+x^2+x+1 (0x07),
// MSB-first.
type Table8 [256]uint8

// Table16 is a precomputed table for CRC-16-CCITT (0x1021), MSB-first.
type Table16 [256]uint16

// Table32 is a precomputed table for the reflected IEEE CRC-32 polynomial.
type Table32 [256]uint32

var (
	table8  = makeTable8(0x07)
	table16 = makeTable16(0x1021)
	table32 = makeTable32(0xEDB88320)
)

func makeTable8(poly uint8) *Table8 {
	var t Table8
	for i := 0; i < 256; i++ {
		crc := uint8(i)
		for b := 0; b < 8; b++ {
			if crc&0x80 != 0 {
				crc = crc<<1 ^ poly
			} else {
				crc <<= 1
			}
		}
		t[i] = crc
	}
	return &t
}

func makeTable16(poly uint16) *Table16 {
	var t Table16
	for i := 0; i < 256; i++ {
		crc := uint16(i) << 8
		for b := 0; b < 8; b++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ poly
			} else {
				crc <<= 1
			}
		}
		t[i] = crc
	}
	return &t
}

func makeTable32(poly uint32) *Table32 {
	var t Table32
	for i := 0; i < 256; i++ {
		crc := uint32(i)
		for b := 0; b < 8; b++ {
			if crc&1 != 0 {
				crc = crc>>1 ^ poly
			} else {
				crc >>= 1
			}
		}
		t[i] = crc
	}
	return &t
}

// Checksum8 returns the CRC-8 of data with initial value 0.
func Checksum8(data []byte) uint8 {
	var crc uint8
	for _, b := range data {
		crc = table8[crc^b]
	}
	return crc
}

// Checksum16 returns the CRC-16-CCITT of data with initial value 0xFFFF.
func Checksum16(data []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range data {
		crc = crc<<8 ^ table16[byte(crc>>8)^b]
	}
	return crc
}

// Checksum32 returns the IEEE CRC-32 of data (reflected, init and final XOR
// 0xFFFFFFFF), matching the conventional Ethernet / zlib CRC.
func Checksum32(data []byte) uint32 {
	crc := ^uint32(0)
	for _, b := range data {
		crc = crc>>8 ^ table32[byte(crc)^b]
	}
	return ^crc
}

// Append32 appends the big-endian CRC-32 of data to data and returns the
// extended slice. Use Verify32 on the receive side.
func Append32(data []byte) []byte {
	c := Checksum32(data)
	return append(data, byte(c>>24), byte(c>>16), byte(c>>8), byte(c))
}

// Verify32 checks a buffer produced by Append32. It returns the payload
// without the trailing CRC and whether the CRC matched.
func Verify32(buf []byte) ([]byte, bool) {
	if len(buf) < 4 {
		return nil, false
	}
	payload := buf[:len(buf)-4]
	want := uint32(buf[len(buf)-4])<<24 | uint32(buf[len(buf)-3])<<16 |
		uint32(buf[len(buf)-2])<<8 | uint32(buf[len(buf)-1])
	return payload, Checksum32(payload) == want
}

// Append16 appends the big-endian CRC-16 of data to data.
func Append16(data []byte) []byte {
	c := Checksum16(data)
	return append(data, byte(c>>8), byte(c))
}

// Verify16 checks a buffer produced by Append16, returning the payload and
// whether the CRC matched.
func Verify16(buf []byte) ([]byte, bool) {
	if len(buf) < 2 {
		return nil, false
	}
	payload := buf[:len(buf)-2]
	want := uint16(buf[len(buf)-2])<<8 | uint16(buf[len(buf)-1])
	return payload, Checksum16(payload) == want
}
