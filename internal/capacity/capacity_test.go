package capacity

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAWGNKnownPoints(t *testing.T) {
	cases := []struct{ snrDB, want float64 }{
		{0, 1},          // log2(2)
		{10, 3.459431},  // log2(11)
		{30, 9.967226},  // log2(1001) — the paper's "roughly 10 bits/s/Hz at 30 dB"
		{-10, 0.137503}, // log2(1.1)
	}
	for _, c := range cases {
		if got := AWGNdB(c.snrDB); math.Abs(got-c.want) > 1e-5 {
			t.Errorf("AWGNdB(%v) = %v, want %v", c.snrDB, got, c.want)
		}
	}
	if AWGN(0) != 0 || AWGN(-3) != 0 {
		t.Error("non-positive SNR should give zero capacity")
	}
}

func TestAWGNMonotone(t *testing.T) {
	prev := -1.0
	for db := -20.0; db <= 50; db += 0.5 {
		c := AWGNdB(db)
		if c <= prev {
			t.Fatalf("capacity not increasing at %v dB", db)
		}
		prev = c
	}
}

func TestBSCKnownPoints(t *testing.T) {
	if got := BSC(0); got != 1 {
		t.Errorf("BSC(0) = %v, want 1", got)
	}
	if got := BSC(0.5); math.Abs(got) > 1e-12 {
		t.Errorf("BSC(0.5) = %v, want 0", got)
	}
	if got := BSC(0.11); math.Abs(got-0.5) > 1e-3 {
		t.Errorf("BSC(0.11) = %v, want about 0.5", got)
	}
	if !math.IsNaN(BSC(-0.1)) || !math.IsNaN(BSC(1.1)) {
		t.Error("out-of-range p should return NaN")
	}
}

func TestBSCSymmetry(t *testing.T) {
	prop := func(raw uint16) bool {
		p := float64(raw%1000) / 1000
		return math.Abs(BSC(p)-BSC(1-p)) < 1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTheorem1Delta(t *testing.T) {
	// ∆ = ½ log2(πe/6) ≈ 0.2546; the paper rounds it to ≈ 0.25.
	d := Theorem1Delta()
	if math.Abs(d-0.2546) > 1e-3 {
		t.Fatalf("Theorem1Delta = %v, want about 0.2546", d)
	}
}

func TestTheorem1RateAt30dB(t *testing.T) {
	// The paper: at 30 dB the code achieves roughly 97.5% of capacity.
	frac := Theorem1Rate(30) / AWGNdB(30)
	if math.Abs(frac-0.975) > 0.005 {
		t.Fatalf("Theorem 1 fraction of capacity at 30 dB = %v, want about 0.975", frac)
	}
}

func TestTheorem1RateNonNegative(t *testing.T) {
	for db := -20.0; db <= 40; db++ {
		if Theorem1Rate(db) < 0 {
			t.Fatalf("negative Theorem 1 rate at %v dB", db)
		}
		if Theorem1Rate(db) > AWGNdB(db) {
			t.Fatalf("Theorem 1 rate exceeds capacity at %v dB", db)
		}
	}
}

func TestDispersionLimits(t *testing.T) {
	// V -> 0 as SNR -> 0 and V -> log2^2(e)/2 as SNR -> infinity.
	if AWGNDispersion(0) != 0 {
		t.Error("dispersion at zero SNR should be 0")
	}
	limit := math.Log2(math.E) * math.Log2(math.E) / 2
	if got := AWGNDispersion(1e9); math.Abs(got-limit) > 1e-6 {
		t.Errorf("dispersion at high SNR = %v, want %v", got, limit)
	}
	// Monotone increasing in SNR.
	prev := -1.0
	for snr := 0.01; snr < 1e4; snr *= 2 {
		v := AWGNDispersion(snr)
		if v <= prev {
			t.Fatalf("dispersion not increasing at snr=%v", snr)
		}
		prev = v
	}
}

func TestNormalApproxBelowCapacity(t *testing.T) {
	for _, db := range []float64{-5, 0, 10, 20, 30} {
		r, err := NormalApproxdB(db, 24, 1e-4)
		if err != nil {
			t.Fatal(err)
		}
		c := AWGNdB(db)
		if r > c {
			t.Errorf("normal approximation %v exceeds capacity %v at %v dB", r, c, db)
		}
		if r < 0 {
			t.Errorf("negative rate at %v dB", db)
		}
	}
}

func TestNormalApproxApproachesCapacity(t *testing.T) {
	// As n grows the bound approaches capacity.
	c := AWGNdB(20)
	r24, _ := NormalApproxdB(20, 24, 1e-4)
	r1000, _ := NormalApproxdB(20, 1000, 1e-4)
	r100000, _ := NormalApproxdB(20, 100000, 1e-4)
	if !(r24 < r1000 && r1000 < r100000 && r100000 < c) {
		t.Fatalf("bound ordering violated: %v %v %v vs capacity %v", r24, r1000, r100000, c)
	}
	if c-r100000 > 0.05 {
		t.Fatalf("bound at n=100000 too far from capacity: %v vs %v", r100000, c)
	}
}

func TestNormalApproxErrors(t *testing.T) {
	if _, err := NormalApprox(10, 0, 1e-4); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NormalApprox(10, 10, 0); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := NormalApprox(10, 10, 1); err == nil {
		t.Error("eps=1 accepted")
	}
}

func TestBSCNormalApprox(t *testing.T) {
	r, err := BSCNormalApprox(0.11, 648, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	c := BSC(0.11)
	if r >= c || r <= 0 {
		t.Fatalf("BSC normal approx = %v, capacity = %v", r, c)
	}
	if _, err := BSCNormalApprox(0.1, 0, 1e-4); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := BSCNormalApprox(0.1, 10, 2); err == nil {
		t.Error("eps out of range accepted")
	}
}

func TestMinPassesAWGN(t *testing.T) {
	// At high SNR one pass should suffice for k=8 (capacity ~13 bits at 40 dB).
	if got := MinPassesAWGN(40, 8); got != 1 {
		t.Errorf("MinPassesAWGN(40,8) = %d, want 1", got)
	}
	// At 0 dB capacity is 1 bit/symbol, minus delta ~0.745: k=8 needs 11 passes.
	got := MinPassesAWGN(0, 8)
	want := int(math.Floor(8/(1-Theorem1Delta()))) + 1
	if got != want {
		t.Errorf("MinPassesAWGN(0,8) = %d, want %d", got, want)
	}
	// Below the delta threshold the guarantee is vacuous.
	if got := MinPassesAWGN(-30, 8); got != 0 {
		t.Errorf("MinPassesAWGN(-30,8) = %d, want 0", got)
	}
}

func TestMinPassesBSC(t *testing.T) {
	if got := MinPassesBSC(0, 4); got != 5 {
		// capacity 1: L*1 > 4 requires L = 5.
		t.Errorf("MinPassesBSC(0,4) = %d, want 5", got)
	}
	if got := MinPassesBSC(0.5, 4); got != 0 {
		t.Errorf("MinPassesBSC(0.5,4) = %d, want 0", got)
	}
	// Capacity 0.5 => need L > 8, so 9.
	if got := MinPassesBSC(0.11002786443835955, 4); got != 9 {
		t.Errorf("MinPassesBSC(p~0.11,4) = %d, want 9", got)
	}
}

func TestMinPassesMonotoneInNoise(t *testing.T) {
	prev := 0
	for db := 40.0; db >= -5; db -= 5 {
		l := MinPassesAWGN(db, 8)
		if l < prev {
			t.Fatalf("required passes decreased as SNR dropped at %v dB", db)
		}
		prev = l
	}
}
