// Package capacity computes the information-theoretic reference curves
// plotted in Figure 2 of the paper and used by Theorems 1 and 2: Shannon
// capacity of the complex AWGN channel, capacity of the binary symmetric
// channel, the rate guarantee of Theorem 1 (capacity minus the
// ½·log2(πe/6) constellation penalty), and the Polyanskiy–Poor–Verdú
// finite-blocklength normal approximation ("fixed-block approx. bound" in the
// figure).
package capacity

import (
	"fmt"
	"math"

	"spinal/internal/mathx"
)

// AWGN returns the Shannon capacity of the complex (two-dimensional) AWGN
// channel in bits per symbol for a linear SNR: C = log2(1 + SNR).
func AWGN(snr float64) float64 {
	if snr <= 0 {
		return 0
	}
	return math.Log2(1 + snr)
}

// AWGNdB is AWGN with the SNR expressed in decibels.
func AWGNdB(snrDB float64) float64 {
	return AWGN(mathx.DBToLinear(snrDB))
}

// BSC returns the capacity of the binary symmetric channel with crossover
// probability p, in bits per channel use: C = 1 - H2(p).
func BSC(p float64) float64 {
	if p < 0 || p > 1 {
		return math.NaN()
	}
	return 1 - mathx.BinaryEntropy(p)
}

// Theorem1Delta is the constant gap ∆ = ½·log2(πe/6) ≈ 0.2546 bits/symbol in
// the rate guarantee of Theorem 1, attributed by the paper to the linear
// (non-Gaussian) constellation mapping.
func Theorem1Delta() float64 {
	return 0.5 * math.Log2(math.Pi*math.E/6)
}

// Theorem1Rate returns the rate guaranteed achievable by Theorem 1 at the
// given SNR (dB): Cawgn(SNR) − ∆, floored at zero.
func Theorem1Rate(snrDB float64) float64 {
	r := AWGNdB(snrDB) - Theorem1Delta()
	if r < 0 {
		return 0
	}
	return r
}

// AWGNDispersion returns the channel dispersion V of the complex AWGN channel
// in bits² per channel use:
//
//	V = (SNR·(SNR+2) / (2·(SNR+1)²)) · log2²(e)
//
// which is the standard expression from Polyanskiy, Poor and Verdú (2010).
func AWGNDispersion(snr float64) float64 {
	if snr <= 0 {
		return 0
	}
	l2e := math.Log2(math.E)
	return snr * (snr + 2) / (2 * (snr + 1) * (snr + 1)) * l2e * l2e
}

// NormalApprox returns the normal-approximation bound on the maximum rate (in
// bits per channel use) of a fixed-rate block code of length n channel uses
// with block error probability eps over the complex AWGN channel at linear
// SNR:
//
//	R ≈ C − sqrt(V/n)·Q⁻¹(eps) + log2(n)/(2n)
//
// This is the computable surrogate for the converse bound of [12] plotted as
// the dashed "fixed-block approx. bound" in Figure 2.
func NormalApprox(snr float64, n int, eps float64) (float64, error) {
	if n < 1 {
		return 0, fmt.Errorf("capacity: block length must be >= 1, got %d", n)
	}
	if eps <= 0 || eps >= 1 {
		return 0, fmt.Errorf("capacity: error probability must be in (0,1), got %v", eps)
	}
	c := AWGN(snr)
	v := AWGNDispersion(snr)
	r := c - math.Sqrt(v/float64(n))*mathx.QInv(eps) + math.Log2(float64(n))/(2*float64(n))
	if r < 0 {
		r = 0
	}
	return r, nil
}

// NormalApproxdB is NormalApprox with the SNR in decibels.
func NormalApproxdB(snrDB float64, n int, eps float64) (float64, error) {
	return NormalApprox(mathx.DBToLinear(snrDB), n, eps)
}

// BSCNormalApprox returns the normal-approximation bound for the BSC with
// crossover probability p, blocklength n and error probability eps:
//
//	R ≈ C − sqrt(V/n)·Q⁻¹(eps) + log2(n)/(2n),  V = p(1−p)·log2²((1−p)/p).
func BSCNormalApprox(p float64, n int, eps float64) (float64, error) {
	if n < 1 {
		return 0, fmt.Errorf("capacity: block length must be >= 1, got %d", n)
	}
	if eps <= 0 || eps >= 1 {
		return 0, fmt.Errorf("capacity: error probability must be in (0,1), got %v", eps)
	}
	if p <= 0 || p >= 1 {
		return BSC(p), nil
	}
	v := p * (1 - p) * math.Pow(math.Log2((1-p)/p), 2)
	r := BSC(p) - math.Sqrt(v/float64(n))*mathx.QInv(eps) + math.Log2(float64(n))/(2*float64(n))
	if r < 0 {
		r = 0
	}
	return r, nil
}

// MinPassesAWGN returns the smallest number of passes L for which Theorem 1
// guarantees vanishing BER for segment size k at the given SNR (dB). It
// returns 0 if the guarantee can never be met (rate bound non-positive).
func MinPassesAWGN(snrDB float64, k int) int {
	bound := AWGNdB(snrDB) - 0.5*math.Log2(math.Pi*math.E/6)
	if bound <= 0 {
		return 0
	}
	return int(math.Floor(float64(k)/bound)) + 1
}

// MinPassesBSC returns the smallest number of passes L for which Theorem 2
// guarantees vanishing BER for segment size k on a BSC with crossover p.
func MinPassesBSC(p float64, k int) int {
	c := BSC(p)
	if c <= 0 {
		return 0
	}
	return int(math.Floor(float64(k)/c)) + 1
}
