// snrsweep prints a miniature version of the paper's Figure 2: the rate the
// spinal code achieves at each SNR from -5 dB to 30 dB, next to the Shannon
// capacity and the best fixed-rate 802.11-style configuration (rate x
// modulation) that would work at that SNR. It shows the core claim of the
// paper — one rateless code replaces the whole rate-adaptation table — using
// only the public API.
package main

import (
	"fmt"
	"log"

	"spinal"
)

// fixedConfigs is a conventional rate-adaptation table: code rate x
// constellation bits per symbol, with the (approximate) minimum SNR each
// configuration needs to run essentially error free.
var fixedConfigs = []struct {
	name     string
	rate     float64
	minSNRdB float64
}{
	{"1/2 BPSK", 0.5, 2},
	{"1/2 QAM-4", 1.0, 5},
	{"3/4 QAM-4", 1.5, 8},
	{"1/2 QAM-16", 2.0, 11},
	{"3/4 QAM-16", 3.0, 15},
	{"2/3 QAM-64", 4.0, 19},
	{"3/4 QAM-64", 4.5, 21},
	{"5/6 QAM-64", 5.0, 23},
}

func bestFixed(snrDB float64) (string, float64) {
	name, rate := "none", 0.0
	for _, c := range fixedConfigs {
		if snrDB >= c.minSNRdB && c.rate > rate {
			name, rate = c.name, c.rate
		}
	}
	return name, rate
}

func main() {
	const messageBits = 96
	const perPoint = 20

	code, err := spinal.NewCode(spinal.Config{MessageBits: messageBits})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("snr_db  spinal_rate  capacity  best_fixed_rate  best_fixed_config")
	for snr := -5.0; snr <= 30; snr += 5 {
		totalBits, totalSymbols := 0, 0
		for trial := 0; trial < perPoint; trial++ {
			msg := spinal.RandomMessage(messageBits, uint64(1000+trial))
			ch, err := spinal.NewAWGN(snr, uint64(trial)*7919+3)
			if err != nil {
				log.Fatal(err)
			}
			res, err := code.TransmitOver(msg, ch, nil, 0)
			if err != nil {
				log.Fatal(err)
			}
			if res.Delivered {
				totalBits += messageBits
			}
			totalSymbols += res.Symbols
		}
		rate := float64(totalBits) / float64(totalSymbols)
		fixedName, fixedRate := bestFixed(snr)
		fmt.Printf("%6.1f  %11.2f  %8.2f  %15.2f  %s\n",
			snr, rate, spinal.ShannonCapacity(snr), fixedRate, fixedName)
	}
	fmt.Println("\nThe spinal column adapts on its own; the fixed column needs SNR feedback")
	fmt.Println("and still wastes the gap between steps of the rate table.")
}
