// fadingadapt contrasts the status quo the paper argues against (§1) with the
// rateless approach it proposes: a reactive rate-adaptation sender that picks
// a fixed LDPC-rate x modulation configuration from a delayed, noisy SNR
// estimate, versus a spinal-code sender that never estimates anything and
// just keeps emitting symbols until each packet is acknowledged. Both run
// over the same time-varying channels.
package main

import (
	"fmt"
	"log"

	"spinal"
	"spinal/internal/adapt"
	"spinal/internal/fading"
)

func main() {
	const symbolBudget = 12000

	scenarios := []struct {
		name          string
		trace         func() (fading.Trace, error)
		estimateDelay int
		estimateErr   float64
	}{
		{
			name:          "static 20 dB link",
			trace:         func() (fading.Trace, error) { return fading.Constant{Level: 20}, nil },
			estimateDelay: 648,
			estimateErr:   1,
		},
		{
			name:          "slow drift, 5..25 dB",
			trace:         func() (fading.Trace, error) { return fading.NewWalk(5, 25, 0.01, 11) },
			estimateDelay: 648,
			estimateErr:   1,
		},
		{
			name:          "bursty interference, 22 dB / 4 dB",
			trace:         func() (fading.Trace, error) { return fading.NewGilbertElliott(22, 4, 700, 700, 12) },
			estimateDelay: 1400,
			estimateErr:   2,
		},
	}

	fmt.Printf("%-34s  %-22s  %-22s\n", "scenario", "rate adaptation", "rateless spinal")
	fmt.Printf("%-34s  %-22s  %-22s\n", "", "(bits/sym, frame loss)", "(bits/sym)")
	for _, sc := range scenarios {
		trace, err := sc.trace()
		if err != nil {
			log.Fatal(err)
		}
		cfg := adapt.Config{
			Trace:         trace,
			SymbolBudget:  symbolBudget,
			EstimateDelay: sc.estimateDelay,
			EstimateErrDB: sc.estimateErr,
			Seed:          99,
		}
		adaptive, rateless, err := adapt.Compare(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fer := 0.0
		if adaptive.Frames > 0 {
			fer = float64(adaptive.FrameErrors) / float64(adaptive.Frames)
		}
		fmt.Printf("%-34s  %6.2f   (%4.1f%% lost)   %6.2f\n",
			sc.name, adaptive.Throughput, 100*fer, rateless.Throughput)
	}
	fmt.Println("\nThe adaptive sender must guess a configuration from stale estimates; when the")
	fmt.Println("channel moves faster than its feedback, it either wastes capacity (too slow a")
	fmt.Println("rate) or loses frames (too fast). The rateless spinal sender needs no estimate:")
	fmt.Println("each packet simply costs however many symbols the channel demanded.")

	// The same time-varying channels are first-class in the public API: a
	// Trace drives a Channel, and TransmitOver runs the rateless loop over
	// it — no internal packages needed.
	trace, err := spinal.GilbertElliottTrace(22, 4, 700, 700, 12)
	if err != nil {
		log.Fatal(err)
	}
	ch, err := spinal.NewTraceChannel(trace, 99)
	if err != nil {
		log.Fatal(err)
	}
	code, err := spinal.NewCode(spinal.Config{MessageBits: 96})
	if err != nil {
		log.Fatal(err)
	}
	msg := spinal.RandomMessage(96, 5)
	res, err := code.TransmitOver(msg, ch, nil, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npublic API, one packet over %s: delivered=%v in %d symbols (%.2f bits/symbol)\n",
		ch.Name(), res.Delivered, res.Symbols, res.Rate)
}
