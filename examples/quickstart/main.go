// Quickstart: encode a message with a spinal code, push its rateless symbol
// stream through an AWGN channel, and decode it — first with the one-call
// Transmit helper, then with the explicit stream/decoder API so the rateless
// loop is visible.
package main

import (
	"fmt"
	"log"

	"spinal"
)

func main() {
	const messageBits = 128
	const snrDB = 12.0

	code, err := spinal.NewCode(spinal.Config{MessageBits: messageBits})
	if err != nil {
		log.Fatal(err)
	}
	message := spinal.RandomMessage(messageBits, 42)

	// One-call simulation: run the rateless loop until the genie confirms the
	// decode (a deployed system would verify a CRC instead).
	ch, err := spinal.AWGNChannel(snrDB, 7)
	if err != nil {
		log.Fatal(err)
	}
	result, err := code.Transmit(message, ch, nil, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one-call transmit: delivered=%v in %d symbols -> %.2f bits/symbol (capacity %.2f)\n",
		result.Delivered, result.Symbols, result.Rate, spinal.ShannonCapacity(snrDB))

	// The same loop spelled out: the sender emits symbols one at a time and
	// the receiver decodes whenever it likes — that is all "rateless" means.
	stream, err := code.EncodeStream(message)
	if err != nil {
		log.Fatal(err)
	}
	decoder, err := code.NewDecoder()
	if err != nil {
		log.Fatal(err)
	}
	ch2, _ := spinal.AWGNChannel(snrDB, 8)
	symbols := 0
	for {
		sym := stream.Next()
		if err := decoder.Observe(sym.Pos, ch2(sym.Value)); err != nil {
			log.Fatal(err)
		}
		symbols++
		// Attempt a decode once per pass.
		if symbols%code.NumSegments() != 0 {
			continue
		}
		decoded, err := decoder.Decode()
		if err != nil {
			log.Fatal(err)
		}
		if code.Equal(decoded, message) {
			fmt.Printf("explicit loop:     decoded after %d symbols -> %.2f bits/symbol\n",
				symbols, float64(messageBits)/float64(symbols))
			return
		}
		if symbols > 200*code.NumSegments() {
			log.Fatal("gave up — channel too noisy for this example")
		}
	}
}
