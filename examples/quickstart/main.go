// Quickstart: encode a message with a spinal code, push its rateless symbol
// stream through an AWGN channel, and decode it — first with the one-call
// TransmitOver helper, then with the explicit batch loop so the pass-at-a-time
// structure of the rateless protocol is visible.
package main

import (
	"fmt"
	"log"

	"spinal"
)

func main() {
	const messageBits = 128
	const snrDB = 12.0

	code, err := spinal.NewCode(spinal.Config{MessageBits: messageBits})
	if err != nil {
		log.Fatal(err)
	}
	message := spinal.RandomMessage(messageBits, 42)

	// One-call simulation: run the rateless loop over a first-class channel
	// until the genie confirms the decode (a deployed system would verify a
	// CRC instead).
	ch, err := spinal.NewAWGN(snrDB, 7)
	if err != nil {
		log.Fatal(err)
	}
	result, err := code.TransmitOver(message, ch, nil, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one-call transmit: delivered=%v over %s in %d symbols -> %.2f bits/symbol (capacity %.2f)\n",
		result.Delivered, ch.Name(), result.Symbols, result.Rate, spinal.ShannonCapacity(snrDB))

	// The same loop spelled out, batch-first: the sender emits one striped
	// pass at a time, the channel corrupts the whole block, and the receiver
	// folds the batch in and decodes whenever it likes — that is all
	// "rateless" means.
	stream, err := code.EncodeStream(message)
	if err != nil {
		log.Fatal(err)
	}
	decoder, err := code.NewDecoder()
	if err != nil {
		log.Fatal(err)
	}
	ch2, err := spinal.NewAWGN(snrDB, 8)
	if err != nil {
		log.Fatal(err)
	}
	var (
		batch []spinal.Symbol
		poss  = make([]spinal.SymbolPos, code.NumSegments())
		tx    = make([]complex128, code.NumSegments())
		rx    = make([]complex128, code.NumSegments())
	)
	symbols := 0
	for {
		batch = stream.EncodePass(batch)
		for i, s := range batch {
			poss[i], tx[i] = s.Pos, s.Value
		}
		ch2.CorruptBlock(rx, tx)
		if err := decoder.ObserveBatch(poss, rx); err != nil {
			log.Fatal(err)
		}
		symbols += len(batch)
		decoded, err := decoder.Decode()
		if err != nil {
			log.Fatal(err)
		}
		if code.Equal(decoded, message) {
			fmt.Printf("explicit loop:     decoded after %d symbols -> %.2f bits/symbol\n",
				symbols, float64(messageBits)/float64(symbols))
			return
		}
		if symbols > 200*code.NumSegments() {
			log.Fatal("gave up — channel too noisy for this example")
		}
	}
}
