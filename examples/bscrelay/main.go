// bscrelay runs the spinal code over a binary symmetric channel — the mode
// the paper describes for systems where the PHY cannot be modified and the
// code must ship plain bits through an existing modulation (§1, §3). Each
// message is framed with a CRC-32, transmitted one coded bit per channel use,
// and decoded with the Hamming-metric beam decoder; the rate is compared with
// the BSC capacity of Theorem 2.
package main

import (
	"fmt"
	"log"

	"spinal"
)

func main() {
	payloads := []string{
		"spinal codes also run over plain binary channels",
		"one coded bit per channel use, Hamming-metric decoding",
		"the code adapts to the crossover probability on its own",
	}

	for _, p := range []float64{0.02, 0.05, 0.1} {
		fmt.Printf("BSC crossover p = %.2f (capacity %.3f bits/use)\n", p, spinal.BSCCapacity(p))
		for i, text := range payloads {
			framed := spinal.AppendCRC32([]byte(text))
			code, err := spinal.NewCode(spinal.Config{
				MessageBits: len(framed) * 8,
				K:           4, // smaller k keeps the bit-mode decoder fast
			})
			if err != nil {
				log.Fatal(err)
			}
			ch, err := spinal.NewBSC(p, uint64(i)*31+uint64(p*1000))
			if err != nil {
				log.Fatal(err)
			}
			verify := func(decoded []byte) bool {
				_, ok := spinal.VerifyCRC32(decoded)
				return ok
			}
			res, err := code.TransmitBitsOver(framed, ch, verify, 0)
			if err != nil {
				log.Fatal(err)
			}
			if !res.Delivered {
				log.Fatalf("message %d not delivered at p=%.2f", i, p)
			}
			payload, ok := spinal.VerifyCRC32(res.Decoded)
			if !ok || string(payload) != text {
				log.Fatalf("message %d corrupted at p=%.2f", i, p)
			}
			fmt.Printf("  message %d: %3d payload bits in %4d coded bits -> rate %.3f\n",
				i+1, len(text)*8, res.Symbols, float64(len(text)*8)/float64(res.Symbols))
		}
		fmt.Println()
	}
}
