// ratelesslink transfers a small "document" over the rateless spinal link
// layer: the sender splits it into packets, streams coded-symbol frames over
// an in-memory link that drops 10% of frames, and the receiver — behind a
// simulated 12 dB radio — decodes each packet and acknowledges it. This is
// the feedback link-layer protocol sketched as future work in §6 of the
// paper.
package main

import (
	"bytes"
	"fmt"
	"log"
	"strings"
	"time"

	"spinal/internal/channel"
	"spinal/internal/link"
	"spinal/internal/rng"
)

const document = `Rateless spinal codes let a sender transmit without knowing the
channel quality: it simply keeps emitting coded symbols until the receiver
says "got it". This example pushes a few paragraphs of text across a lossy
in-memory link whose radio runs at 12 dB SNR. Each packet carries a CRC-32 so
the receiver knows when its decode is correct, and the sender stops as soon
as the acknowledgement arrives — packets sent over a good channel finish in a
single pass, while a noisier channel would transparently use more passes.`

func main() {
	senderSide, receiverSide, err := link.NewPipePair(0.10, 2024)
	if err != nil {
		log.Fatal(err)
	}
	defer senderSide.Close()

	// SymbolsPerFrame and AckPoll together set the effective symbol rate of
	// the simulated link; the pacing gives the receiver time to run its
	// decode attempts, like a real radio whose channel is the bottleneck.
	cfg := link.Config{SymbolsPerFrame: 84, AckPoll: 25 * time.Millisecond}
	sender, err := link.NewSender(senderSide, cfg)
	if err != nil {
		log.Fatal(err)
	}
	radio, err := channel.NewQuantizedAWGN(12, 14, rng.New(99))
	if err != nil {
		log.Fatal(err)
	}
	receiver, err := link.NewReceiver(receiverSide, cfg, radio)
	if err != nil {
		log.Fatal(err)
	}

	// Receiver: reassemble packets until the whole document has arrived.
	type got struct {
		id      uint32
		payload []byte
	}
	done := make(chan []got)
	go func() {
		var parts []got
		total := 0
		for total < len(document) {
			d, err := receiver.Receive(2 * time.Second)
			if err == link.ErrTimeout {
				continue
			}
			if err != nil {
				log.Fatal(err)
			}
			parts = append(parts, got{id: d.MsgID, payload: d.Payload})
			total += len(d.Payload)
			rate := float64(len(d.Payload)*8) / float64(d.Symbols)
			fmt.Printf("  [receiver] packet %d: %3d bytes in %4d symbols (%.2f bits/symbol)\n",
				d.MsgID, len(d.Payload), d.Symbols, rate)
		}
		done <- parts
	}()

	// Sender: chunk the document into packets and send them ratelessly.
	const chunk = 80
	var ids []uint32
	fmt.Printf("[sender] shipping %d bytes over a lossy 12 dB link\n", len(document))
	for off, id := 0, uint32(1); off < len(document); off, id = off+chunk, id+1 {
		end := off + chunk
		if end > len(document) {
			end = len(document)
		}
		report, err := sender.Send(id, []byte(document[off:end]))
		if err != nil {
			log.Fatal(err)
		}
		if !report.Acked {
			log.Fatalf("packet %d was never acknowledged", id)
		}
		ids = append(ids, id)
		fmt.Printf("[sender]   packet %d acknowledged after %d symbols in %d frames\n",
			id, report.SymbolsSent, report.FramesSent)
	}

	parts := <-done
	var buf bytes.Buffer
	for _, want := range ids {
		for _, p := range parts {
			if p.id == want {
				buf.Write(p.payload)
			}
		}
	}
	if buf.String() == document {
		fmt.Println("\ndocument reassembled intact:")
		fmt.Println(strings.Repeat("-", 60))
		fmt.Println(buf.String())
	} else {
		log.Fatal("reassembled document does not match the original")
	}
}
